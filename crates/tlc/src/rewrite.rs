//! Redundancy-eliminating rewrites (paper §4).
//!
//! Two rules, each removing a *redundant pattern match / data access* where
//! the same tag appears in an APT with different edge annotations:
//!
//! * **Flatten rewrite** (§4.2, Figure 10): a pattern with sibling nodes
//!   `B` (`+`/`*`, feeding an aggregate) and `C` (`-`/`?`, feeding a later
//!   join) over the same tag accesses every `B`/`C` node twice. The rewrite
//!   keeps only the grouped branch, computes the aggregate, then `Flatten`s
//!   the cluster to recover the fan-out semantics, re-attaching `C`'s extra
//!   sub-structure with an extension select rooted at `B`'s class.
//! * **Shadow/Illuminate rewrite** (§4.3, Figure 12): the mirror case — the
//!   fan-out use comes first and a later extension select re-matches the
//!   same nodes to *cluster* them. The rewrite shadows instead of dropping
//!   the other cluster members, and replaces the re-matching select with an
//!   `Illuminate`. Applied after the Flatten rewrite this converts
//!   `Flatten` itself into `Shadow` ("using Shadow in place of Flatten as
//!   in Figure 10"), which is how Q1/Q2 get their OPT plans.
//!
//! [`optimize`] applies Flatten rewrites to fixpoint, then Shadow rewrites.

use crate::analyze::{self, AnalyzeError};
use crate::logical_class::LclId;
use crate::ops::construct::{ConstructItem, ConstructValue};
use crate::ops::dupelim::DedupKind;
use crate::ops::filter::FilterPred;
use crate::pattern::{Apt, AptRoot, MSpec};
use crate::plan::Plan;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A rewrite pass produced a plan that fails the static LC dataflow
/// analysis — the differential oracle of [`optimize_verified`]. Names the
/// offending pass so a broken rewrite is attributable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteViolation {
    /// Which rewrite pass produced the bad plan.
    pub pass: &'static str,
    /// The dataflow violation the analyzer found.
    pub error: AnalyzeError,
}

impl fmt::Display for RewriteViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite pass {} broke LC dataflow: {}", self.pass, self.error)
    }
}

impl std::error::Error for RewriteViolation {}

/// Applies both rewrite rules until neither fires.
///
/// Runs in oracle mode ([`optimize_verified`]): the LC dataflow analyzer
/// checks the plan after every individual pass application. A violating
/// rewrite panics in debug builds; in release builds it is rejected and the
/// last verified plan is kept (a correct-but-unoptimized plan beats a
/// corrupted one).
pub fn optimize(plan: &Plan) -> Plan {
    match optimize_verified(plan) {
        Ok(p) => p,
        Err((last_good, violation)) => {
            debug_assert!(false, "{violation}");
            last_good
        }
    }
}

/// [`optimize`] with the differential rewrite oracle exposed: after every
/// individual pass application the result is re-checked by
/// [`crate::analyze::verify`]. On a violation, returns the last plan that
/// still verified together with the typed error naming the pass.
///
/// The *input* plan is not re-verified here — translation already checked
/// it — so a pre-existing violation is attributed to the caller, not to a
/// pass.
#[allow(clippy::result_large_err)]
pub fn optimize_verified(plan: &Plan) -> Result<Plan, (Plan, RewriteViolation)> {
    let mut p = plan.clone();
    for (pass, rewrite) in [
        ("flatten_rewrite", flatten_rewrite as fn(&Plan) -> (Plan, bool)),
        ("shadow_rewrite", shadow_rewrite),
        ("prune_dead_classes", prune_dead_classes),
    ] {
        loop {
            let (next, changed) = rewrite(&p);
            if !changed {
                break;
            }
            if let Err(error) = analyze::verify(&next) {
                return Err((p, RewriteViolation { pass, error }));
            }
            p = next;
        }
    }
    Ok(p)
}

// ---------------------------------------------------------------------
// Shared analysis helpers
// ---------------------------------------------------------------------

/// Classes an operator's *parameters* reference (not its pattern trees).
fn op_param_refs(plan: &Plan, out: &mut Vec<LclId>) {
    match plan {
        Plan::Select { .. } => {}
        Plan::Filter { lcl, pred, .. } => {
            out.push(*lcl);
            if let FilterPred::CmpLcl { other, .. } = pred {
                out.push(*other);
            }
        }
        Plan::Join { spec, .. } => {
            if let Some(p) = &spec.pred {
                out.push(p.left);
                out.push(p.right);
            }
            out.extend(spec.dedup_right_on);
        }
        Plan::Project { keep, .. } => out.extend(keep.iter().copied()),
        Plan::DupElim { on, .. } => out.extend(on.iter().copied()),
        Plan::Aggregate { over, .. } => out.push(*over),
        Plan::Construct { spec, .. } => {
            for item in spec {
                construct_refs(item, out);
            }
        }
        Plan::Sort { keys, .. } => out.extend(keys.iter().map(|k| k.lcl)),
        Plan::Flatten { parent, child, .. } | Plan::Shadow { parent, child, .. } => {
            out.push(*parent);
            out.push(*child);
        }
        Plan::Illuminate { lcl, .. } => out.push(*lcl),
        Plan::GroupBy { by, collect, .. } => {
            out.push(*by);
            out.push(*collect);
        }
        Plan::Materialize { lcls, .. } => out.extend(lcls.iter().copied()),
        Plan::Union { dedup_on, .. } => out.extend(dedup_on.iter().copied()),
    }
}

/// Every class referenced anywhere in the plan — parameters plus pattern
/// anchors (extension selects re-use earlier classes).
fn all_refs(plan: &Plan) -> Vec<LclId> {
    let mut out = Vec::new();
    walk(plan, &mut |p| {
        op_param_refs(p, &mut out);
        if let Plan::Select { apt, .. } = p {
            if let AptRoot::Lcl(l) = apt.root {
                out.push(l);
            }
        }
    });
    out
}

fn construct_refs(item: &ConstructItem, out: &mut Vec<LclId>) {
    match item {
        ConstructItem::Element { attrs, children, .. } => {
            for (_, v) in attrs {
                if let ConstructValue::LclText(l) = v {
                    out.push(*l);
                }
            }
            for c in children {
                construct_refs(c, out);
            }
        }
        ConstructItem::LclRef { lcl, .. } | ConstructItem::LclText(lcl) => out.push(*lcl),
        ConstructItem::Text(_) => {}
    }
}

fn walk(plan: &Plan, f: &mut impl FnMut(&Plan)) {
    f(plan);
    match plan {
        Plan::Select { input, .. } => {
            if let Some(i) = input {
                walk(i, f);
            }
        }
        Plan::Join { left, right, .. } => {
            walk(left, f);
            walk(right, f);
        }
        Plan::Union { inputs, .. } => {
            for i in inputs {
                walk(i, f);
            }
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => walk(input, f),
    }
}

/// Rebuilds a plan, applying `f` bottom-up (children first).
fn map_plan(plan: &Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    let rebuilt = match plan {
        Plan::Select { input, apt } => Plan::Select {
            input: input.as_ref().map(|i| Box::new(map_plan(i, f))),
            apt: apt.clone(),
        },
        Plan::Filter { input, lcl, pred, mode } => Plan::Filter {
            input: Box::new(map_plan(input, f)),
            lcl: *lcl,
            pred: pred.clone(),
            mode: *mode,
        },
        Plan::Join { left, right, spec } => Plan::Join {
            left: Box::new(map_plan(left, f)),
            right: Box::new(map_plan(right, f)),
            spec: spec.clone(),
        },
        Plan::Project { input, keep } => {
            Plan::Project { input: Box::new(map_plan(input, f)), keep: keep.clone() }
        }
        Plan::DupElim { input, on, kind } => {
            Plan::DupElim { input: Box::new(map_plan(input, f)), on: on.clone(), kind: *kind }
        }
        Plan::Aggregate { input, func, over, new_lcl } => Plan::Aggregate {
            input: Box::new(map_plan(input, f)),
            func: *func,
            over: *over,
            new_lcl: *new_lcl,
        },
        Plan::Construct { input, spec } => {
            Plan::Construct { input: Box::new(map_plan(input, f)), spec: spec.clone() }
        }
        Plan::Sort { input, keys } => {
            Plan::Sort { input: Box::new(map_plan(input, f)), keys: keys.clone() }
        }
        Plan::Flatten { input, parent, child } => {
            Plan::Flatten { input: Box::new(map_plan(input, f)), parent: *parent, child: *child }
        }
        Plan::Shadow { input, parent, child } => {
            Plan::Shadow { input: Box::new(map_plan(input, f)), parent: *parent, child: *child }
        }
        Plan::Illuminate { input, lcl } => {
            Plan::Illuminate { input: Box::new(map_plan(input, f)), lcl: *lcl }
        }
        Plan::GroupBy { input, by, collect } => {
            Plan::GroupBy { input: Box::new(map_plan(input, f)), by: *by, collect: *collect }
        }
        Plan::Materialize { input, lcls } => {
            Plan::Materialize { input: Box::new(map_plan(input, f)), lcls: lcls.clone() }
        }
        Plan::Union { inputs, dedup_on } => Plan::Union {
            inputs: inputs.iter().map(|i| map_plan(i, f)).collect(),
            dedup_on: dedup_on.clone(),
        },
    };
    f(rebuilt)
}

/// Substitutes class labels in every operator parameter of the plan.
fn subst_lcls(plan: &Plan, map: &HashMap<LclId, LclId>) -> Plan {
    let s = |l: LclId| *map.get(&l).unwrap_or(&l);
    map_plan(plan, &mut |p| match p {
        Plan::Filter { input, lcl, pred, mode } => Plan::Filter {
            input,
            lcl: s(lcl),
            pred: match pred {
                FilterPred::CmpLcl { op, other } => FilterPred::CmpLcl { op, other: s(other) },
                c => c,
            },
            mode,
        },
        Plan::Join { left, right, mut spec } => {
            if let Some(pr) = &mut spec.pred {
                pr.left = s(pr.left);
                pr.right = s(pr.right);
            }
            spec.dedup_right_on = spec.dedup_right_on.map(s);
            Plan::Join { left, right, spec }
        }
        Plan::Project { input, keep } => {
            Plan::Project { input, keep: keep.into_iter().map(s).collect() }
        }
        Plan::DupElim { input, on, kind } => {
            Plan::DupElim { input, on: on.into_iter().map(s).collect(), kind }
        }
        Plan::Aggregate { input, func, over, new_lcl } => {
            Plan::Aggregate { input, func, over: s(over), new_lcl }
        }
        Plan::Construct { input, spec } => {
            Plan::Construct { input, spec: spec.into_iter().map(|i| subst_item(i, &s)).collect() }
        }
        Plan::Sort { input, mut keys } => {
            for k in &mut keys {
                k.lcl = s(k.lcl);
            }
            Plan::Sort { input, keys }
        }
        Plan::Illuminate { input, lcl } => Plan::Illuminate { input, lcl: s(lcl) },
        other => other,
    })
}

fn subst_item(item: ConstructItem, s: &impl Fn(LclId) -> LclId) -> ConstructItem {
    match item {
        ConstructItem::Element { tag, lcl, attrs, children } => ConstructItem::Element {
            tag,
            lcl,
            attrs: attrs
                .into_iter()
                .map(|(n, v)| {
                    let v = match v {
                        ConstructValue::LclText(l) => ConstructValue::LclText(s(l)),
                        lit => lit,
                    };
                    (n, v)
                })
                .collect(),
            children: children.into_iter().map(|c| subst_item(c, s)).collect(),
        },
        ConstructItem::LclRef { lcl, hidden } => ConstructItem::LclRef { lcl: s(lcl), hidden },
        ConstructItem::LclText(lcl) => ConstructItem::LclText(s(lcl)),
        t => t,
    }
}

/// Does pattern subtree `b` (of `apt_b`) embed into subtree `c` (of
/// `apt_c`) from the roots — same tag and axis, with every `b` child
/// embeddable into some `c` child?
fn embeds(apt_b: &Apt, b: usize, apt_c: &Apt, c: usize) -> bool {
    let nb = &apt_b.nodes[b];
    let nc = &apt_c.nodes[c];
    if nb.tag != nc.tag || nb.axis != nc.axis {
        return false;
    }
    apt_b
        .children_of(Some(b))
        .all(|bc| apt_c.children_of(Some(c)).any(|cc| embeds(apt_b, bc, apt_c, cc)))
}

// ---------------------------------------------------------------------
// Flatten rewrite (§4.2)
// ---------------------------------------------------------------------

/// One pass of the Flatten rewrite; returns the (possibly) rewritten plan
/// and whether anything changed.
pub fn flatten_rewrite(plan: &Plan) -> (Plan, bool) {
    let global_refs = all_refs(plan);
    let mut changed = false;
    let out = map_plan(plan, &mut |p| {
        if changed {
            return p;
        }
        // Candidate: a chain of Filters/Aggregates (possibly empty) over a
        // document select — examined from the top of the chain.
        let Some((chain_refs, select_apt)) = chain_over_doc_select(&p) else {
            return p;
        };
        let Some((parent_idx, b_idx, c_idx)) =
            find_flatten_sites(&select_apt, &chain_refs, &global_refs)
        else {
            return p;
        };
        changed = true;
        rebuild_flatten(&p, &select_apt, parent_idx, b_idx, c_idx)
    });
    (out, changed)
}

/// If `p` is `[Filter|Aggregate]* ∘ Select(document)`, returns the classes
/// referenced by the chain and the select's APT.
fn chain_over_doc_select(p: &Plan) -> Option<(Vec<LclId>, Apt)> {
    let mut refs = Vec::new();
    let mut cur = p;
    loop {
        match cur {
            Plan::Filter { input, .. } | Plan::Aggregate { input, .. } => {
                op_param_refs(cur, &mut refs);
                cur = input;
            }
            Plan::Select { input: None, apt } => {
                if matches!(apt.root, AptRoot::Document { .. }) && !refs.is_empty() {
                    return Some((refs, apt.clone()));
                }
                return None;
            }
            _ => return None,
        }
    }
}

/// Finds (parent, B, C) in the APT satisfying Phase 1 of the Flatten rule.
fn find_flatten_sites(
    apt: &Apt,
    chain_refs: &[LclId],
    global_refs: &[LclId],
) -> Option<(Option<usize>, usize, usize)> {
    let parents: Vec<Option<usize>> =
        std::iter::once(None).chain((0..apt.nodes.len()).map(Some)).collect();
    for parent in parents {
        let kids: Vec<usize> = apt.children_of(parent).collect();
        for &b in &kids {
            if !apt.nodes[b].mspec.groups() {
                continue;
            }
            // The chain (the aggregate) must use B's subtree.
            let b_lcls: Vec<LclId> =
                apt.subtree_indexes(b).iter().map(|&i| apt.nodes[i].lcl).collect();
            if !chain_refs.iter().any(|r| b_lcls.contains(r)) {
                continue;
            }
            for &c in &kids {
                if c == b || apt.nodes[c].mspec.groups() {
                    continue;
                }
                if !embeds(apt, b, apt, c) {
                    continue;
                }
                // C's own class must be re-creatable: its root label may not
                // be referenced anywhere (descendants are re-attached with
                // their labels preserved).
                if global_refs.contains(&apt.nodes[c].lcl) {
                    continue;
                }
                return Some((parent, b, c));
            }
        }
    }
    None
}

/// Performs Phase 2: `use_B(S[aptD](FL[A,B](use_B(S[aptB]))))`.
fn rebuild_flatten(chain: &Plan, apt: &Apt, parent: Option<usize>, b: usize, c: usize) -> Plan {
    let apt_b = apt.without_subtree(c);
    // Indexes shift after removal; find B again by its class label.
    let b_lcl = apt.nodes[b].lcl;
    let parent_lcl = match parent {
        None => apt.root_lcl(),
        Some(p) => apt.nodes[p].lcl,
    };
    // Rebuild the chain over the reduced select.
    let new_chain = replace_leaf_select(chain, &apt_b);
    let flat = Plan::Flatten { input: Box::new(new_chain), parent: parent_lcl, child: b_lcl };
    // Extension select re-attaching tree(C) - tree(B) under B's class.
    let c_kids: Vec<usize> = apt.children_of(Some(c)).collect();
    if c_kids.is_empty() {
        return flat;
    }
    let mut ext = Apt::extending(b_lcl);
    for k in c_kids {
        copy_subtree_into(apt, k, &mut ext, None);
    }
    Plan::Select { input: Some(Box::new(flat)), apt: ext }
}

fn replace_leaf_select(p: &Plan, apt: &Apt) -> Plan {
    match p {
        Plan::Select { input: None, .. } => Plan::Select { input: None, apt: apt.clone() },
        Plan::Filter { input, lcl, pred, mode } => Plan::Filter {
            input: Box::new(replace_leaf_select(input, apt)),
            lcl: *lcl,
            pred: pred.clone(),
            mode: *mode,
        },
        Plan::Aggregate { input, func, over, new_lcl } => Plan::Aggregate {
            input: Box::new(replace_leaf_select(input, apt)),
            func: *func,
            over: *over,
            new_lcl: *new_lcl,
        },
        other => other.clone(),
    }
}

fn copy_subtree_into(src: &Apt, at: usize, dst: &mut Apt, dst_parent: Option<usize>) {
    let n = &src.nodes[at];
    let idx = dst.add(dst_parent, n.axis, n.mspec, n.tag, n.pred.clone(), n.lcl);
    for c in src.children_of(Some(at)).collect::<Vec<_>>() {
        copy_subtree_into(src, c, dst, Some(idx));
    }
}

// ---------------------------------------------------------------------
// Shadow / Illuminate rewrite (§4.3)
// ---------------------------------------------------------------------

/// One pass of the Shadow/Illuminate rewrite.
pub fn shadow_rewrite(plan: &Plan) -> (Plan, bool) {
    // Find every extension select with a grouped top chain and try each.
    let mut candidates: Vec<(Apt, LclId)> = Vec::new();
    walk(plan, &mut |p| {
        if let Plan::Select { input: Some(_), apt } = p {
            if let AptRoot::Lcl(anchor) = apt.root {
                let tops: Vec<usize> = apt.children_of(None).collect();
                if tops.len() == 1
                    && apt.nodes[tops[0]].mspec.groups()
                    && apt.nodes[tops[0]].pred.is_none()
                {
                    candidates.push((apt.clone(), anchor));
                }
            }
        }
    });
    for (ext_apt, anchor) in candidates {
        if let Some(rewritten) = try_shadow_candidate(plan, &ext_apt, anchor) {
            return (rewritten, true);
        }
    }
    (plan.clone(), false)
}

fn try_shadow_candidate(plan: &Plan, ext_apt: &Apt, anchor: LclId) -> Option<Plan> {
    let ext_apt = ext_apt.clone();
    let ext_top = ext_apt.children_of(None).next().expect("checked by caller");

    // Variant 1: a Flatten{parent: anchor, child: C} below, with C's
    // pattern structurally covering the extension chain.
    let mut v1: Option<LclId> = None;
    // Variant 2: a document select whose APT contains an edge
    // (node-with-lcl==anchor) → C with non-grouping mspec covering the
    // extension chain; remember C's label.
    let mut v2: Option<LclId> = None;
    walk(plan, &mut |p| {
        match p {
            Plan::Flatten { parent, child, .. } if *parent == anchor && v1.is_none() => {
                v1 = Some(*child);
            }
            Plan::Select { apt, .. }
                if matches!(apt.root, AptRoot::Document { .. }) && v2.is_none() =>
            {
                // Children of the node labelled `anchor` (or of the root).
                let site = if apt.root_lcl() == anchor {
                    Some(None)
                } else {
                    apt.node_with_lcl(anchor).map(Some)
                };
                if let Some(site) = site {
                    for c in apt.children_of(site).collect::<Vec<_>>() {
                        if !apt.nodes[c].mspec.groups() && embeds(&ext_apt, ext_top, apt, c) {
                            v2 = Some(apt.nodes[c].lcl);
                            break;
                        }
                    }
                }
            }
            _ => {}
        }
    });

    // Build the label substitution ext → base by structural correspondence.
    let build_map = |base_apt: &Apt, base_c: usize| -> Option<HashMap<LclId, LclId>> {
        let mut map = HashMap::new();
        if !map_structure(&ext_apt, ext_top, base_apt, base_c, &mut map) {
            return None;
        }
        Some(map)
    };

    if let Some(c_lcl) = v1 {
        // Locate the APT that defines C to check coverage and build the map.
        let mut base: Option<(Apt, usize)> = None;
        walk(plan, &mut |p| {
            if base.is_some() {
                return;
            }
            if let Plan::Select { apt, .. } = p {
                if let Some(i) = apt.node_with_lcl(c_lcl) {
                    base = Some((apt.clone(), i));
                }
            }
        });
        if let Some((base_apt, c_idx)) = base {
            if embeds(&ext_apt, ext_top, &base_apt, c_idx) {
                if let Some(map) = build_map(&base_apt, c_idx) {
                    let rewritten = apply_shadow_v1(plan, &ext_apt, anchor, c_lcl);
                    let rewritten = subst_lcls(&rewritten, &map);
                    let rewritten =
                        widen_projects(&rewritten, &map.values().copied().collect::<Vec<_>>());
                    return Some(rewritten);
                }
            }
        }
    }

    if let Some(c_lcl) = v2 {
        let mut base: Option<(Apt, usize)> = None;
        walk(plan, &mut |p| {
            if base.is_some() {
                return;
            }
            if let Plan::Select { apt, .. } = p {
                if let Some(i) = apt.node_with_lcl(c_lcl) {
                    base = Some((apt.clone(), i));
                }
            }
        });
        if let Some((base_apt, c_idx)) = base {
            if let Some(map) = build_map(&base_apt, c_idx) {
                let ext_mspec = ext_apt.nodes[ext_top].mspec;
                let rewritten = apply_shadow_v2(plan, &ext_apt, anchor, c_lcl, ext_mspec);
                let rewritten = subst_lcls(&rewritten, &map);
                let rewritten =
                    widen_projects(&rewritten, &map.values().copied().collect::<Vec<_>>());
                return Some(rewritten);
            }
        }
    }

    None
}

/// Maps each ext-pattern node onto a structurally matching base node.
fn map_structure(
    ext: &Apt,
    e: usize,
    base: &Apt,
    b: usize,
    map: &mut HashMap<LclId, LclId>,
) -> bool {
    let ne = &ext.nodes[e];
    let nb = &base.nodes[b];
    if ne.tag != nb.tag || ne.axis != nb.axis {
        return false;
    }
    map.insert(ne.lcl, nb.lcl);
    for ec in ext.children_of(Some(e)).collect::<Vec<_>>() {
        let mut found = false;
        for bc in base.children_of(Some(b)).collect::<Vec<_>>() {
            if map_structure(ext, ec, base, bc, map) {
                found = true;
                break;
            }
        }
        if !found {
            return false;
        }
    }
    true
}

/// Variant 1: Flatten → Shadow, extension select → Illuminate.
fn apply_shadow_v1(plan: &Plan, ext_apt: &Apt, anchor: LclId, c_lcl: LclId) -> Plan {
    map_plan(plan, &mut |p| match p {
        Plan::Flatten { input, parent, child } if parent == anchor && child == c_lcl => {
            Plan::Shadow { input, parent, child }
        }
        Plan::Select { input: Some(input), apt } if apt == *ext_apt => {
            Plan::Illuminate { input, lcl: c_lcl }
        }
        other => other,
    })
}

/// Variant 2: base edge re-annotated + Shadow inserted above the base
/// select; extension select → Illuminate.
fn apply_shadow_v2(plan: &Plan, ext_apt: &Apt, anchor: LclId, c_lcl: LclId, mspec: MSpec) -> Plan {
    map_plan(plan, &mut |p| match p {
        Plan::Select { input, apt }
            if apt.node_with_lcl(c_lcl).is_some()
                && matches!(apt.root, AptRoot::Document { .. }) =>
        {
            let mut apt = apt;
            let idx = apt.node_with_lcl(c_lcl).expect("checked");
            apt.nodes[idx].mspec = mspec;
            let sel = Plan::Select { input, apt };
            Plan::Shadow { input: Box::new(sel), parent: anchor, child: c_lcl }
        }
        Plan::Select { input: Some(input), apt } if apt == *ext_apt => {
            Plan::Illuminate { input, lcl: c_lcl }
        }
        other => other,
    })
}

/// Adds the mapped classes to every Project keep list so shadowed members
/// survive to the Illuminate — but only in Projects whose input actually
/// produces the class. Widening unconditionally would leak labels into
/// unrelated branches (e.g. the second LET subquery of x9), which the LC
/// dataflow analyzer rightly rejects.
fn widen_projects(plan: &Plan, add: &[LclId]) -> Plan {
    map_plan(plan, &mut |p| match p {
        Plan::Project { input, mut keep } => {
            if let Ok(t) = analyze::analyze(&input) {
                for a in add {
                    if !keep.contains(a) && t.available(*a) {
                        keep.push(*a);
                    }
                }
            }
            Plan::Project { input, keep }
        }
        other => other,
    })
}

// ---------------------------------------------------------------------
// Class-liveness pruning (analysis-justified dead-code elimination)
// ---------------------------------------------------------------------

/// What the pruning pass removed from a plan. Produced by
/// [`prune_with_report`]; the query service surfaces the counts in
/// `.metrics` and `tlc::lint` turns dead Project columns into diagnostics.
#[derive(Debug, Clone, Default)]
pub struct PruneReport {
    /// Project columns no downstream operator reads (the classes removed
    /// from `keep` lists).
    pub dead_project_columns: Vec<LclId>,
    /// NodeId `DupElim`s removed because [`analyze::distinctness`] proves
    /// their input already distinct on the key.
    pub dupelims_removed: usize,
    /// Extension selects removed because every pattern node they matched
    /// was dead.
    pub selects_eliminated: usize,
    /// `*`-annotated pattern subtrees removed from Select APTs because no
    /// live class needed their matches.
    pub star_subtrees_pruned: usize,
}

impl PruneReport {
    /// Did the pass change the plan at all?
    pub fn changed(&self) -> bool {
        !self.dead_project_columns.is_empty()
            || self.ops_eliminated() > 0
            || self.star_subtrees_pruned > 0
    }

    /// Whole operators removed from the plan.
    pub fn ops_eliminated(&self) -> usize {
        self.dupelims_removed + self.selects_eliminated
    }
}

/// What a subplan's output is consumed *through* — the backward liveness
/// lattice. Flows root-to-leaf; each operator translates the demand on its
/// output into demand on its inputs.
///
/// The three levels encode how much of a result tree is observable:
///
/// * [`Demand::All`]: a structure-sensitive consumer (Flatten, Shadow,
///   GroupBy, or a Construct copying a temporary/document-root class) sits
///   above — the whole tree may be walked, nothing is prunable.
/// * [`Demand::Serialize`]: the trees are serialized raw (the plan root) and
///   the named classes are additionally read as operator parameters.
///   Serialization renders a store node by its *stored* subtree and ignores
///   result-tree children, so pattern subtrees attached below a non-root
///   match are invisible to it — but children of the tree root are not.
/// * [`Demand::Only`]: a Construct upstream rebuilds the output from copies
///   of the named classes; raw serialization of these trees never happens,
///   so *only* the named classes' members (their identities and stored
///   values) are observable.
#[derive(Debug, Clone)]
enum Demand {
    All,
    Serialize(BTreeSet<LclId>),
    Only(BTreeSet<LclId>),
}

impl Demand {
    fn with(&self, extra: impl IntoIterator<Item = LclId>) -> Demand {
        match self {
            Demand::All => Demand::All,
            Demand::Serialize(s) => {
                let mut s = s.clone();
                s.extend(extra);
                Demand::Serialize(s)
            }
            Demand::Only(s) => {
                let mut s = s.clone();
                s.extend(extra);
                Demand::Only(s)
            }
        }
    }

    fn needs(&self, lcl: LclId) -> bool {
        match self {
            Demand::All => true,
            Demand::Serialize(s) | Demand::Only(s) => s.contains(&lcl),
        }
    }
}

struct PruneCtx {
    /// Classes whose members are executor temporaries (their copies and
    /// serializations expose result-tree children).
    temps: BTreeSet<LclId>,
    /// `temps` plus document-root classes — everything whose copy exposes
    /// attached result-tree children.
    opaque: BTreeSet<LclId>,
    report: PruneReport,
}

/// The class-liveness pruning pass: removes dead `*` pattern subtrees,
/// Project columns nothing reads, extension selects whose every node is
/// dead, and NodeId DupElims whose input is provably distinct already.
/// Registered in [`optimize_verified`], so every application is re-checked
/// by the dataflow analyzer; the `experiments lintcheck` oracle additionally
/// checks byte-identity of pruned vs unpruned output on random plans.
pub fn prune_dead_classes(plan: &Plan) -> (Plan, bool) {
    let (out, report) = prune_with_report(plan);
    let changed = report.changed();
    (out, changed)
}

/// [`prune_dead_classes`] with the full [`PruneReport`] exposed (the lint
/// pass reports dead Project columns from it).
pub fn prune_with_report(plan: &Plan) -> (Plan, PruneReport) {
    let temps = analyze::temp_classes(plan);
    let mut opaque = temps.clone();
    walk(plan, &mut |p| {
        if let Plan::Select { apt, .. } = p {
            if matches!(apt.root, AptRoot::Document { .. }) {
                opaque.insert(apt.root_lcl());
            }
        }
    });
    let mut cx = PruneCtx { temps, opaque, report: PruneReport::default() };
    // The plan root's trees are serialized raw with no extra class reads.
    let out = prune(plan, Demand::Serialize(BTreeSet::new()), &mut cx);
    (out, cx.report)
}

fn prune(plan: &Plan, d: Demand, cx: &mut PruneCtx) -> Plan {
    match plan {
        Plan::Select { input, apt } => {
            let mut apt = apt.clone();
            if !matches!(d, Demand::All) {
                // Remove `*` subtrees no live class needs. A `*` node never
                // constrains tree existence (zero matches still keep the
                // tree) and grouped matches never fan trees out, so removal
                // preserves the tree list and every surviving member.
                loop {
                    let candidate = (0..apt.nodes.len()).find(|&i| {
                        if apt.nodes[i].mspec != MSpec::Star {
                            return false;
                        }
                        if apt.subtree_indexes(i).iter().any(|&j| d.needs(apt.nodes[j].lcl)) {
                            return false;
                        }
                        if apt.nodes[i].parent.is_some() {
                            // Matches attach below a non-root store match,
                            // which serialization and copies render from
                            // the store — invisible either way.
                            return true;
                        }
                        // Top-level matches attach to the tree root / the
                        // anchor's members, which are observable when the
                        // output is serialized raw or the anchor is a
                        // temporary or itself read downstream.
                        match &d {
                            Demand::Only(s) => {
                                let anchor = apt.root_lcl();
                                !cx.temps.contains(&anchor) && !s.contains(&anchor)
                            }
                            _ => false,
                        }
                    });
                    match candidate {
                        Some(i) => {
                            apt = apt.without_subtree(i);
                            cx.report.star_subtrees_pruned += 1;
                        }
                        None => break,
                    }
                }
            }
            if apt.nodes.is_empty() && matches!(apt.root, AptRoot::Lcl(_)) {
                if let Some(i) = input {
                    // Every node this extension select matched was dead: the
                    // select passed each input tree through unchanged.
                    cx.report.selects_eliminated += 1;
                    return prune(i, d, cx);
                }
            }
            let anchor = apt.root_lcl();
            Plan::Select {
                input: input.as_ref().map(|i| Box::new(prune(i, d.with([anchor]), cx))),
                apt,
            }
        }
        Plan::Filter { input, lcl, pred, mode } => {
            let mut extra = vec![*lcl];
            if let FilterPred::CmpLcl { other, .. } = pred {
                extra.push(*other);
            }
            Plan::Filter {
                input: Box::new(prune(input, d.with(extra), cx)),
                lcl: *lcl,
                pred: pred.clone(),
                mode: *mode,
            }
        }
        Plan::Join { left, right, spec } => {
            let mut extra = Vec::new();
            if let Some(p) = &spec.pred {
                extra.push(p.left);
                extra.push(p.right);
            }
            extra.extend(spec.dedup_right_on);
            let below = match &d {
                Demand::All => Demand::All,
                // The join root is a fresh temporary whose serialization
                // renders both input trees raw.
                Demand::Serialize(s) => {
                    let mut s = s.clone();
                    s.extend(extra);
                    Demand::Serialize(s)
                }
                Demand::Only(s) => {
                    let mut s = s.clone();
                    s.remove(&spec.root_lcl);
                    s.extend(extra);
                    Demand::Only(s)
                }
            };
            Plan::Join {
                left: Box::new(prune(left, below.clone(), cx)),
                right: Box::new(prune(right, below, cx)),
                spec: spec.clone(),
            }
        }
        Plan::Project { input, keep } => match d.clone() {
            Demand::All => {
                Plan::Project { input: Box::new(prune(input, Demand::All, cx)), keep: keep.clone() }
            }
            Demand::Only(s) => {
                let (kept, dead): (Vec<LclId>, Vec<LclId>) =
                    keep.iter().copied().partition(|l| s.contains(l));
                cx.report.dead_project_columns.extend(dead);
                let mut below = s;
                below.extend(kept.iter().copied());
                Plan::Project { input: Box::new(prune(input, Demand::Only(below), cx)), keep: kept }
            }
            Demand::Serialize(s) => {
                // Project rebuilds each tree around the kept members (plus
                // the root), so what gets serialized above depends only on
                // those classes — the demand below drops to `Only`, unless
                // a kept class or the root is a temporary (whose rendering
                // walks result-tree structure).
                let root = analyze::analyze(input).ok().and_then(|t| t.root);
                let gate = keep.iter().any(|l| cx.temps.contains(l))
                    || root.is_none_or(|r| cx.temps.contains(&r));
                let below = if gate {
                    Demand::All
                } else {
                    let mut n = s;
                    n.extend(keep.iter().copied());
                    Demand::Only(n)
                };
                Plan::Project { input: Box::new(prune(input, below, cx)), keep: keep.clone() }
            }
        },
        Plan::DupElim { input, on, kind } => {
            if *kind == DedupKind::NodeId && analyze::distinctness(input).proves_distinct_on(on) {
                // Provably the identity: every key class is a per-tree
                // singleton and the input is already distinct on a subset
                // of the key. Removal is exact under any demand.
                cx.report.dupelims_removed += 1;
                return prune(input, d, cx);
            }
            Plan::DupElim {
                input: Box::new(prune(input, d.with(on.iter().copied()), cx)),
                on: on.clone(),
                kind: *kind,
            }
        }
        Plan::Aggregate { input, func, over, new_lcl } => {
            let below = match &d {
                // Aggregate grafts its temporary into the input tree; a raw
                // serialization above therefore renders the whole input
                // tree — no pruning below.
                Demand::All | Demand::Serialize(_) => Demand::All,
                Demand::Only(s) => {
                    let mut s = s.clone();
                    s.remove(new_lcl);
                    s.insert(*over);
                    Demand::Only(s)
                }
            };
            Plan::Aggregate {
                input: Box::new(prune(input, below, cx)),
                func: *func,
                over: *over,
                new_lcl: *new_lcl,
            }
        }
        Plan::Construct { input, spec } => {
            let mut refs = Vec::new();
            for item in spec {
                construct_refs(item, &mut refs);
            }
            let below = if refs.iter().any(|l| cx.opaque.contains(l)) {
                // Copying a temporary or document root renders its
                // result-tree children — full structure demand.
                Demand::All
            } else {
                match &d {
                    Demand::All => Demand::All,
                    // The construct rebuilds output trees from copies of
                    // the referenced classes: below it, only those classes
                    // (plus whatever survives the construct for operators
                    // above it) are observable.
                    Demand::Serialize(s) | Demand::Only(s) => {
                        let mut n = s.clone();
                        n.extend(refs.iter().copied());
                        let mut defined = BTreeSet::new();
                        construct_defined_lcls(spec, &mut defined);
                        for l in &defined {
                            n.remove(l);
                        }
                        Demand::Only(n)
                    }
                }
            };
            Plan::Construct { input: Box::new(prune(input, below, cx)), spec: spec.clone() }
        }
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(prune(input, d.with(keys.iter().map(|k| k.lcl)), cx)),
            keys: keys.clone(),
        },
        // Flatten/Shadow/GroupBy rebuild or graft result-tree structure:
        // everything below them is observable.
        Plan::Flatten { input, parent, child } => Plan::Flatten {
            input: Box::new(prune(input, Demand::All, cx)),
            parent: *parent,
            child: *child,
        },
        Plan::Shadow { input, parent, child } => Plan::Shadow {
            input: Box::new(prune(input, Demand::All, cx)),
            parent: *parent,
            child: *child,
        },
        Plan::GroupBy { input, by, collect } => Plan::GroupBy {
            input: Box::new(prune(input, Demand::All, cx)),
            by: *by,
            collect: *collect,
        },
        Plan::Illuminate { input, lcl } => {
            Plan::Illuminate { input: Box::new(prune(input, d.with([*lcl]), cx)), lcl: *lcl }
        }
        Plan::Materialize { input, lcls } => Plan::Materialize {
            input: Box::new(prune(input, d.with(lcls.iter().copied()), cx)),
            lcls: lcls.clone(),
        },
        Plan::Union { inputs, dedup_on } => {
            let below = d.with(dedup_on.iter().copied());
            Plan::Union {
                inputs: inputs.iter().map(|i| prune(i, below.clone(), cx)).collect(),
                dedup_on: dedup_on.clone(),
            }
        }
    }
}

fn construct_defined_lcls(spec: &[ConstructItem], out: &mut BTreeSet<LclId>) {
    for item in spec {
        if let ConstructItem::Element { lcl, children, .. } = item {
            if let Some(l) = lcl {
                out.insert(*l);
            }
            construct_defined_lcls(children, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_to_string;

    fn db() -> xmldb::Database {
        let mut db = xmldb::Database::new();
        db.load_xml(
            "auction.xml",
            r#"<site>
              <open_auctions>
                <open_auction>
                  <bidder><personref person="p0"/></bidder>
                  <bidder><personref person="p1"/></bidder>
                  <bidder><personref person="p2"/></bidder>
                  <quantity>7</quantity>
                </open_auction>
                <open_auction>
                  <bidder><personref person="p0"/></bidder>
                  <quantity>2</quantity>
                </open_auction>
              </open_auctions>
              <people>
                <person id="p0"><age>30</age><name>Ann</name></person>
                <person id="p1"><age>40</age><name>Bo</name></person>
              </people>
            </site>"#,
        )
        .unwrap();
        db
    }

    /// Q1-shaped query: aggregate over bidder + join through bidder.
    const Q: &str = r#"
        FOR $p IN document("auction.xml")//person
        FOR $o IN document("auction.xml")//open_auction
        WHERE count($o/bidder) > 2 AND $p/age > 25
          AND $p/@id = $o/bidder/personref/@person
        RETURN <person name={$p/name/text()}> $o/bidder </person>"#;

    #[test]
    fn flatten_rewrite_fires_on_q1_shape() {
        let db = db();
        let plan = crate::compile(Q, &db).unwrap();
        let (rewritten, changed) = flatten_rewrite(&plan);
        assert!(changed, "the Flatten rewrite must detect Q1's double bidder access");
        let s = rewritten.display(Some(&db)).to_string();
        assert!(s.contains("Flatten"), "{s}");
    }

    #[test]
    fn flatten_rewrite_preserves_results() {
        let db = db();
        let plan = crate::compile(Q, &db).unwrap();
        let (rewritten, changed) = flatten_rewrite(&plan);
        assert!(changed);
        let a = execute_to_string(&db, &plan).unwrap();
        let b = execute_to_string(&db, &rewritten).unwrap();
        assert_eq!(a, b, "rewrite must not change query results");
        assert!(a.contains("name=\"Ann\"") || a.contains("name=\"Bo\""));
    }

    #[test]
    fn shadow_rewrite_fires_after_flatten() {
        let db = db();
        let plan = crate::compile(Q, &db).unwrap();
        let (flat, _) = flatten_rewrite(&plan);
        let (shadowed, changed) = shadow_rewrite(&flat);
        assert!(changed, "Shadow should replace the RETURN's re-matching select");
        let s = shadowed.display(Some(&db)).to_string();
        assert!(s.contains("Shadow"), "{s}");
        assert!(s.contains("Illuminate"), "{s}");
    }

    #[test]
    fn optimize_preserves_results_and_reduces_selects() {
        let db = db();
        let plan = crate::compile(Q, &db).unwrap();
        let opt = optimize(&plan);
        let (plain_trees, plain_stats) = crate::exec::execute(&db, &plan).unwrap();
        let (opt_trees, opt_stats) = crate::exec::execute(&db, &opt).unwrap();
        let a = crate::output::serialize_results(&db, &plain_trees);
        let b = crate::output::serialize_results(&db, &opt_trees);
        assert_eq!(a, b);
        assert!(
            opt_stats.nodes_inspected < plain_stats.nodes_inspected,
            "OPT plan must touch fewer nodes ({} vs {})",
            opt_stats.nodes_inspected,
            plain_stats.nodes_inspected
        );
    }

    #[test]
    fn rewrite_is_a_noop_without_redundancy() {
        let db = db();
        let plan = crate::compile(
            r#"FOR $p IN document("auction.xml")//person WHERE $p/age > 25 RETURN $p/name"#,
            &db,
        )
        .unwrap();
        let (p1, c1) = flatten_rewrite(&plan);
        assert!(!c1);
        let (_, c2) = shadow_rewrite(&p1);
        assert!(!c2);
    }

    #[test]
    fn prune_removes_provably_redundant_dupelim() {
        let db = db();
        // One FOR variable, no predicate structure: the translator's
        // NodeId DupElim on $s is provably the identity.
        let q = r#"FOR $s IN document("auction.xml")/site RETURN $s"#;
        let plan = crate::compile(q, &db).unwrap();
        let (pruned, report) = prune_with_report(&plan);
        assert!(report.dupelims_removed >= 1, "{report:?}");
        assert!(analyze::verify(&pruned).is_ok());
        assert_eq!(
            execute_to_string(&db, &plan).unwrap(),
            execute_to_string(&db, &pruned).unwrap()
        );
    }

    #[test]
    fn prune_keeps_load_bearing_dupelim() {
        let db = db();
        // Two FOR variables: the DupElim collapses binding multiplicity and
        // must survive.
        let q = r#"
            FOR $p IN document("auction.xml")//person
            FOR $o IN document("auction.xml")//open_auction
            RETURN <pair/>"#;
        let plan = crate::compile(q, &db).unwrap();
        let mut kept = 0;
        walk(&prune_dead_classes(&plan).0, &mut |p| {
            if matches!(p, Plan::DupElim { .. }) {
                kept += 1;
            }
        });
        assert!(kept >= 1, "join-shaped dedup must not be pruned");
    }

    #[test]
    fn prune_drops_dead_star_subtree_and_preserves_bytes() {
        let db = db();
        use crate::logical_class::LclId;
        use crate::ops::construct::{ConstructItem, ConstructValue};
        use xmldb::AxisRel;
        let person = db.interner().lookup("person").unwrap();
        let age = db.interner().lookup("age").unwrap();
        let bidder = db.interner().lookup("bidder").unwrap();
        let mut apt = Apt::for_document("auction.xml", LclId(1));
        let p = apt.add(None, AxisRel::Descendant, MSpec::One, person, None, LclId(2));
        apt.add(Some(p), AxisRel::Child, MSpec::One, age, None, LclId(3));
        // A grouped subtree nothing downstream reads.
        apt.add(None, AxisRel::Descendant, MSpec::Star, bidder, None, LclId(4));
        let plan = Plan::Construct {
            input: Box::new(Plan::Select { input: None, apt }),
            spec: vec![ConstructItem::Element {
                tag: "hit".into(),
                lcl: None,
                attrs: vec![("age".into(), ConstructValue::LclText(LclId(3)))],
                children: vec![],
            }],
        };
        analyze::verify(&plan).unwrap();
        let (pruned, report) = prune_with_report(&plan);
        assert_eq!(report.star_subtrees_pruned, 1, "{report:?}");
        assert!(analyze::verify(&pruned).is_ok());
        assert_eq!(
            execute_to_string(&db, &plan).unwrap(),
            execute_to_string(&db, &pruned).unwrap()
        );
        // The dead subtree must not be pruned when the output is serialized
        // raw (its matches hang off the tree root).
        let raw = Plan::Select {
            input: None,
            apt: match &plan {
                Plan::Construct { input, .. } => match &**input {
                    Plan::Select { apt, .. } => apt.clone(),
                    _ => unreachable!(),
                },
                _ => unreachable!(),
            },
        };
        let (_, raw_report) = prune_with_report(&raw);
        assert_eq!(raw_report.star_subtrees_pruned, 0, "{raw_report:?}");
    }

    #[test]
    fn prune_narrows_dead_project_columns() {
        let db = db();
        use crate::logical_class::LclId;
        use crate::ops::construct::{ConstructItem, ConstructValue};
        use xmldb::AxisRel;
        let person = db.interner().lookup("person").unwrap();
        let age = db.interner().lookup("age").unwrap();
        let name = db.interner().lookup("name").unwrap();
        let mut apt = Apt::for_document("auction.xml", LclId(1));
        let p = apt.add(None, AxisRel::Descendant, MSpec::One, person, None, LclId(2));
        apt.add(Some(p), AxisRel::Child, MSpec::One, age, None, LclId(3));
        apt.add(Some(p), AxisRel::Child, MSpec::One, name, None, LclId(4));
        // Project keeps age + name but the construct reads only age: name
        // is a dead column.
        let plan = Plan::Construct {
            input: Box::new(Plan::Project {
                input: Box::new(Plan::Select { input: None, apt }),
                keep: vec![LclId(3), LclId(4)],
            }),
            spec: vec![ConstructItem::Element {
                tag: "hit".into(),
                lcl: None,
                attrs: vec![("age".into(), ConstructValue::LclText(LclId(3)))],
                children: vec![],
            }],
        };
        analyze::verify(&plan).unwrap();
        let (pruned, report) = prune_with_report(&plan);
        assert_eq!(report.dead_project_columns, vec![LclId(4)], "{report:?}");
        assert!(analyze::verify(&pruned).is_ok());
        assert_eq!(
            execute_to_string(&db, &plan).unwrap(),
            execute_to_string(&db, &pruned).unwrap()
        );
    }

    #[test]
    fn optimize_runs_prune_and_stays_byte_identical() {
        let db = db();
        let q = r#"FOR $s IN document("auction.xml")/site RETURN $s"#;
        let plan = crate::compile(q, &db).unwrap();
        let opt = optimize(&plan);
        assert_eq!(execute_to_string(&db, &plan).unwrap(), execute_to_string(&db, &opt).unwrap());
        let mut dupelims = 0;
        walk(&opt, &mut |p| {
            if matches!(p, Plan::DupElim { .. }) {
                dupelims += 1;
            }
        });
        assert_eq!(dupelims, 0, "optimize must apply the prune pass");
    }

    /// Regression: x9-shaped query — two LET subqueries where the Shadow
    /// rewrite fires in the first branch only. widen_projects used to add
    /// the shadowed class to *every* Project, including the second branch's,
    /// which references a class that branch never produces (caught by the
    /// dataflow oracle on the real x9).
    #[test]
    fn shadow_widening_stays_within_its_branch() {
        let db = db();
        let q = r#"
            FOR $p IN document("auction.xml")//person
            LET $a := FOR $o IN document("auction.xml")//open_auction
                      WHERE $o/bidder/personref/@person = $p/@id
                        AND $o/quantity > 1
                      RETURN <got>{$o/quantity/text()}</got>
            LET $b := FOR $x IN document("auction.xml")//open_auction
                      WHERE $x/bidder/personref/@person = $p/@id
                      RETURN <open>{$x/quantity/text()}</open>
            RETURN <person name={$p/name/text()}>{count($a/got)}</person>"#;
        let plan = crate::compile(q, &db).unwrap();
        let opt = optimize_verified(&plan).unwrap_or_else(|(_, v)| panic!("{v}"));
        let a = execute_to_string(&db, &plan).unwrap();
        let b = execute_to_string(&db, &opt).unwrap();
        assert_eq!(a, b, "verified rewrite must preserve results");
    }
}
