//! Annotated pattern trees (paper §2.1, Definitions 1–3).
//!
//! An APT is a pattern tree whose edges carry a *matching specification*
//! ([`MSpec`]): `-` (exactly one match per parent match), `?` (zero or one),
//! `+` (all matches, at least one) or `*` (all matches, possibly none). The
//! grouping specifications `+`/`*` are what let a single match produce
//! heterogeneous witness trees — all siblings matching a pattern node are
//! clustered into one witness tree instead of fanning out.
//!
//! Every APT node carries the logical class label its matches will be tagged
//! with, which is how downstream operators refer to them (§2.2).
//!
//! An APT is anchored either at a document root (a `Select` reading base
//! data) or at an existing logical class of the input trees (*pattern tree
//! reuse / extension*, §4.1 — e.g. Selects 8 and 9 of Figure 7).

use crate::logical_class::LclId;
use std::fmt;
use xmldb::{AxisRel, Database, NodeId, TagId};
use xquery::CmpOp;

/// Matching specification of an APT edge (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MSpec {
    /// `-` : exactly one match per witness tree; no match ⇒ parent match dies.
    One,
    /// `?` : zero or one match per witness tree.
    Opt,
    /// `+` : all matches clustered into one witness tree; at least one required.
    Plus,
    /// `*` : all matches clustered; zero allowed.
    Star,
}

impl MSpec {
    /// True for `+` and `*`: all relatives are grouped into one witness tree.
    pub fn groups(self) -> bool {
        matches!(self, MSpec::Plus | MSpec::Star)
    }

    /// True for `?` and `*`: a parent match survives with no child match.
    pub fn optional(self) -> bool {
        matches!(self, MSpec::Opt | MSpec::Star)
    }

    /// The paper's symbol.
    pub fn symbol(self) -> char {
        match self {
            MSpec::One => '-',
            MSpec::Opt => '?',
            MSpec::Plus => '+',
            MSpec::Star => '*',
        }
    }
}

impl fmt::Display for MSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Literal operand of a content predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum PredValue {
    /// Numeric comparison.
    Num(f64),
    /// String comparison (or `contains` needle).
    Str(Box<str>),
}

impl From<&xquery::Literal> for PredValue {
    fn from(l: &xquery::Literal) -> Self {
        match l {
            xquery::Literal::Number(n) => PredValue::Num(*n),
            xquery::Literal::Str(s) => PredValue::Str(s.as_str().into()),
        }
    }
}

/// A content predicate on an APT node (the `P_v` of Definition 2, beyond the
/// tag test).
#[derive(Debug, Clone, PartialEq)]
pub struct ContentPred {
    /// The comparison operator.
    pub op: CmpOp,
    /// The literal operand.
    pub value: PredValue,
}

impl ContentPred {
    /// Evaluates the predicate against a textual value.
    pub fn eval_str(&self, actual: &str) -> bool {
        match (&self.value, self.op) {
            (PredValue::Str(s), CmpOp::Contains) => actual.contains(&**s),
            (PredValue::Str(s), op) => cmp_holds(op, actual.cmp(&**s)),
            (PredValue::Num(_), CmpOp::Contains) => false,
            (PredValue::Num(n), op) => match actual.trim().parse::<f64>() {
                Ok(a) => a.partial_cmp(n).is_some_and(|ord| cmp_holds(op, ord)),
                Err(_) => false,
            },
        }
    }

    /// Evaluates the predicate against a base node's value.
    pub fn eval_node(&self, db: &Database, node: NodeId) -> bool {
        match &self.value {
            PredValue::Num(n) if self.op != CmpOp::Contains => match db.node(node).num_value() {
                Some(a) => a.partial_cmp(n).is_some_and(|ord| cmp_holds(self.op, ord)),
                None => false,
            },
            _ => self.eval_str(&db.node(node).string_value()),
        }
    }
}

fn cmp_holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
        CmpOp::Contains => unreachable!("contains handled before ordering"),
    }
}

/// Where an APT is anchored.
#[derive(Debug, Clone, PartialEq)]
pub enum AptRoot {
    /// At a document's synthetic root (`doc_root` in the figures); matches
    /// read base data. The root itself is tagged with `lcl`.
    Document {
        /// Logical document name, e.g. `auction.xml`.
        name: String,
        /// Class label assigned to the document root node.
        lcl: LclId,
    },
    /// At the members of an existing class of the input trees (pattern tree
    /// extension, §4.1).
    Lcl(LclId),
}

/// One APT node below the anchor.
#[derive(Debug, Clone, PartialEq)]
pub struct AptNode {
    /// Parent node index; `None` means attached directly to the anchor.
    pub parent: Option<usize>,
    /// Structural axis of the edge from the parent.
    pub axis: AxisRel,
    /// Matching specification of the edge from the parent.
    pub mspec: MSpec,
    /// Tag test (attribute tags are interned with their `@`).
    pub tag: TagId,
    /// Optional content predicate.
    pub pred: Option<ContentPred>,
    /// Class label assigned to matches of this node.
    pub lcl: LclId,
}

/// An annotated pattern tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Apt {
    /// The anchor.
    pub root: AptRoot,
    /// The pattern nodes (parent indexes always precede children).
    pub nodes: Vec<AptNode>,
}

impl Apt {
    /// New APT anchored at a document root.
    pub fn for_document(name: impl Into<String>, root_lcl: LclId) -> Apt {
        Apt { root: AptRoot::Document { name: name.into(), lcl: root_lcl }, nodes: Vec::new() }
    }

    /// New APT anchored at an existing class.
    pub fn extending(lcl: LclId) -> Apt {
        Apt { root: AptRoot::Lcl(lcl), nodes: Vec::new() }
    }

    /// Adds a pattern node; returns its index.
    pub fn add(
        &mut self,
        parent: Option<usize>,
        axis: AxisRel,
        mspec: MSpec,
        tag: TagId,
        pred: Option<ContentPred>,
        lcl: LclId,
    ) -> usize {
        debug_assert!(parent.is_none_or(|p| p < self.nodes.len()));
        self.nodes.push(AptNode { parent, axis, mspec, tag, pred, lcl });
        self.nodes.len() - 1
    }

    /// Indexes of the children of `parent` (`None` = anchor children).
    pub fn children_of(&self, parent: Option<usize>) -> impl Iterator<Item = usize> + '_ {
        self.nodes.iter().enumerate().filter(move |(_, n)| n.parent == parent).map(|(i, _)| i)
    }

    /// Finds the pattern node carrying a class label.
    pub fn node_with_lcl(&self, lcl: LclId) -> Option<usize> {
        self.nodes.iter().position(|n| n.lcl == lcl)
    }

    /// The anchor's class label, if it has one.
    pub fn root_lcl(&self) -> LclId {
        match &self.root {
            AptRoot::Document { lcl, .. } => *lcl,
            AptRoot::Lcl(lcl) => *lcl,
        }
    }

    /// Class labels of every pattern node (anchor included).
    pub fn all_lcls(&self) -> Vec<LclId> {
        let mut out = vec![self.root_lcl()];
        out.extend(self.nodes.iter().map(|n| n.lcl));
        out
    }

    /// Index set of the subtree rooted at pattern node `at` (inclusive).
    pub fn subtree_indexes(&self, at: usize) -> Vec<usize> {
        let mut out = vec![at];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            out.extend(self.children_of(Some(cur)));
            i += 1;
        }
        out.sort_unstable();
        out
    }

    /// A copy of this APT without the subtree rooted at `at`.
    pub fn without_subtree(&self, at: usize) -> Apt {
        let dead = self.subtree_indexes(at);
        let mut map: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut out = Apt { root: self.root.clone(), nodes: Vec::new() };
        for (i, n) in self.nodes.iter().enumerate() {
            if dead.binary_search(&i).is_ok() {
                continue;
            }
            let mut n = n.clone();
            n.parent = n.parent.and_then(|p| map[p]);
            map[i] = Some(out.nodes.len());
            // A surviving node whose parent died would dangle; subtree
            // removal guarantees this cannot happen.
            out.nodes.push(n);
        }
        out
    }

    /// Renders the APT in a compact single-line form for plan displays,
    /// resolving tags through `db` when available.
    pub fn display<'a>(&'a self, db: Option<&'a Database>) -> AptDisplay<'a> {
        AptDisplay { apt: self, db }
    }

    /// Canonical structural form of the subtree rooted at each pattern node
    /// (one string per node, indexed like `self.nodes`). Sibling subtrees
    /// are sorted lexicographically by their forms, so two APTs that differ
    /// only in sibling declaration order have identical forms. The form
    /// covers axis, matching spec, tag, content predicate (operator and
    /// exact literal — numeric literals by bit pattern) and class label.
    pub fn canonical_forms(&self) -> Vec<String> {
        let mut memo: Vec<Option<String>> = vec![None; self.nodes.len()];
        for v in 0..self.nodes.len() {
            self.canonical_form(v, &mut memo);
        }
        memo.into_iter().map(|m| m.expect("all nodes visited")).collect()
    }

    fn canonical_form(&self, v: usize, memo: &mut Vec<Option<String>>) -> String {
        if let Some(s) = &memo[v] {
            return s.clone();
        }
        let n = &self.nodes[v];
        let mut kids: Vec<String> =
            self.children_of(Some(v)).map(|c| self.canonical_form(c, memo)).collect();
        kids.sort_unstable();
        let axis = match n.axis {
            AxisRel::Child => '/',
            AxisRel::Descendant => '%',
        };
        let s = format!(
            "{axis}{}t{}{}c{}[{}]",
            n.mspec.symbol(),
            n.tag.0,
            pred_form(n.pred.as_ref()),
            n.lcl.0,
            kids.join(",")
        );
        memo[v] = Some(s.clone());
        s
    }

    /// A canonical structural fingerprint of the whole APT: identical for
    /// APTs equal up to sibling reordering, different whenever any axis,
    /// matching spec, tag, predicate or class label differs. Class labels
    /// are part of the fingerprint on purpose — cached match results embed
    /// them, so only label-identical patterns may share an entry. The
    /// fingerprint is a full canonical *form* (not a hash), so distinct
    /// patterns can never collide.
    pub fn fingerprint(&self) -> String {
        let forms = self.canonical_forms();
        let mut anchored: Vec<&str> = self.children_of(None).map(|v| forms[v].as_str()).collect();
        anchored.sort_unstable();
        let root = match &self.root {
            // Length-prefix the document name so it cannot be confused with
            // a pattern form that happens to share its tail.
            AptRoot::Document { name, lcl } => format!("d{}:{name}@c{}", name.len(), lcl.0),
            AptRoot::Lcl(lcl) => format!("x@c{}", lcl.0),
        };
        format!("{root}[{}]", anchored.join(","))
    }
}

/// Canonical form of an optional content predicate, used by
/// [`Apt::fingerprint`]. Numeric literals render by IEEE-754 bit pattern
/// (so `NaN`s and signed zeros key conservatively apart); string literals
/// are length-prefixed so no literal can forge form structure.
fn pred_form(pred: Option<&ContentPred>) -> String {
    let Some(p) = pred else {
        return String::new();
    };
    let op = match p.op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
        CmpOp::Contains => "has",
    };
    match &p.value {
        PredValue::Num(n) => format!("°{op}n{:016x}", n.to_bits()),
        PredValue::Str(s) => format!("°{op}s{}:{s}", s.len()),
    }
}

/// Display adapter for [`Apt`].
pub struct AptDisplay<'a> {
    apt: &'a Apt,
    db: Option<&'a Database>,
}

impl fmt::Display for AptDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.apt.root {
            AptRoot::Document { name, lcl } => write!(f, "doc({name}){lcl}")?,
            AptRoot::Lcl(lcl) => write!(f, "{lcl}")?,
        }
        self.fmt_children(f, None)
    }
}

impl AptDisplay<'_> {
    fn fmt_children(&self, f: &mut fmt::Formatter<'_>, parent: Option<usize>) -> fmt::Result {
        let kids: Vec<usize> = self.apt.children_of(parent).collect();
        if kids.is_empty() {
            return Ok(());
        }
        write!(f, "[")?;
        for (i, k) in kids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let n = &self.apt.nodes[*k];
            let axis = match n.axis {
                AxisRel::Child => "/",
                AxisRel::Descendant => "//",
            };
            let tag = match self.db {
                Some(db) => db.interner().name(n.tag).to_string(),
                None => format!("#{}", n.tag.0),
            };
            write!(f, "{axis}{}{}{}", n.mspec, tag, n.lcl)?;
            if n.pred.is_some() {
                write!(f, "°")?;
            }
            self.fmt_children(f, Some(*k))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Apt {
        // doc(a)(2)[//-person(3)[/-@id(7), /-age(10)°]]
        let mut apt = Apt::for_document("a.xml", LclId(2));
        let person = apt.add(None, AxisRel::Descendant, MSpec::One, TagId(10), None, LclId(3));
        apt.add(Some(person), AxisRel::Child, MSpec::One, TagId(11), None, LclId(7));
        apt.add(
            Some(person),
            AxisRel::Child,
            MSpec::One,
            TagId(12),
            Some(ContentPred { op: CmpOp::Gt, value: PredValue::Num(25.0) }),
            LclId(10),
        );
        apt
    }

    #[test]
    fn children_and_lookup() {
        let apt = sample();
        assert_eq!(apt.children_of(None).count(), 1);
        assert_eq!(apt.children_of(Some(0)).count(), 2);
        assert_eq!(apt.node_with_lcl(LclId(7)), Some(1));
        assert_eq!(apt.node_with_lcl(LclId(99)), None);
        assert_eq!(apt.root_lcl(), LclId(2));
        assert_eq!(apt.all_lcls().len(), 4);
    }

    #[test]
    fn subtree_and_removal() {
        let apt = sample();
        assert_eq!(apt.subtree_indexes(0), vec![0, 1, 2]);
        assert_eq!(apt.subtree_indexes(1), vec![1]);
        let pruned = apt.without_subtree(1);
        assert_eq!(pruned.nodes.len(), 2);
        assert!(pruned.node_with_lcl(LclId(7)).is_none());
        assert!(pruned.node_with_lcl(LclId(10)).is_some());
        // Parent of the surviving leaf still the person node.
        let age = pruned.node_with_lcl(LclId(10)).unwrap();
        assert_eq!(pruned.nodes[age].parent, Some(pruned.node_with_lcl(LclId(3)).unwrap()));
    }

    #[test]
    fn mspec_properties() {
        assert!(MSpec::Plus.groups() && MSpec::Star.groups());
        assert!(!MSpec::One.groups() && !MSpec::Opt.groups());
        assert!(MSpec::Opt.optional() && MSpec::Star.optional());
        assert!(!MSpec::One.optional() && !MSpec::Plus.optional());
        assert_eq!(MSpec::One.to_string(), "-");
    }

    #[test]
    fn content_pred_string_and_numeric() {
        let eq = ContentPred { op: CmpOp::Eq, value: PredValue::Str("person0".into()) };
        assert!(eq.eval_str("person0"));
        assert!(!eq.eval_str("person1"));
        let gt = ContentPred { op: CmpOp::Gt, value: PredValue::Num(25.0) };
        assert!(gt.eval_str("26"));
        assert!(gt.eval_str(" 30 "));
        assert!(!gt.eval_str("25"));
        assert!(!gt.eval_str("abc"));
        let has = ContentPred { op: CmpOp::Contains, value: PredValue::Str("old".into()) };
        assert!(has.eval_str("gold coin"));
        assert!(!has.eval_str("silver"));
        let ne = ContentPred { op: CmpOp::Ne, value: PredValue::Str("x".into()) };
        assert!(ne.eval_str("y"));
        assert!(!ne.eval_str("x"));
    }

    #[test]
    fn display_is_compact() {
        let apt = sample();
        let s = apt.display(None).to_string();
        assert!(s.starts_with("doc(a.xml)(2)["), "{s}");
        assert!(s.contains("//-#10(3)"), "{s}");
    }

    /// The sample APT with its two leaf siblings declared in the opposite
    /// order.
    fn sample_reordered() -> Apt {
        let mut apt = Apt::for_document("a.xml", LclId(2));
        let person = apt.add(None, AxisRel::Descendant, MSpec::One, TagId(10), None, LclId(3));
        apt.add(
            Some(person),
            AxisRel::Child,
            MSpec::One,
            TagId(12),
            Some(ContentPred { op: CmpOp::Gt, value: PredValue::Num(25.0) }),
            LclId(10),
        );
        apt.add(Some(person), AxisRel::Child, MSpec::One, TagId(11), None, LclId(7));
        apt
    }

    #[test]
    fn fingerprint_is_sibling_order_insensitive() {
        assert_ne!(sample().nodes, sample_reordered().nodes, "declaration orders differ");
        assert_eq!(sample().fingerprint(), sample_reordered().fingerprint());
    }

    #[test]
    fn fingerprint_splits_on_every_component() {
        let base = sample();
        // Predicate value.
        let mut p = sample();
        p.nodes[2].pred = Some(ContentPred { op: CmpOp::Gt, value: PredValue::Num(26.0) });
        assert_ne!(base.fingerprint(), p.fingerprint());
        // Predicate operator.
        let mut op = sample();
        op.nodes[2].pred = Some(ContentPred { op: CmpOp::Ge, value: PredValue::Num(25.0) });
        assert_ne!(base.fingerprint(), op.fingerprint());
        // Predicate dropped entirely.
        let mut none = sample();
        none.nodes[2].pred = None;
        assert_ne!(base.fingerprint(), none.fingerprint());
        // Matching spec.
        let mut m = sample();
        m.nodes[1].mspec = MSpec::Star;
        assert_ne!(base.fingerprint(), m.fingerprint());
        // Axis.
        let mut a = sample();
        a.nodes[1].axis = AxisRel::Descendant;
        assert_ne!(base.fingerprint(), a.fingerprint());
        // Tag.
        let mut t = sample();
        t.nodes[1].tag = TagId(99);
        assert_ne!(base.fingerprint(), t.fingerprint());
        // Class label (cached results embed labels).
        let mut l = sample();
        l.nodes[1].lcl = LclId(42);
        assert_ne!(base.fingerprint(), l.fingerprint());
        // Anchor: document name and anchor kind.
        let mut doc = sample();
        doc.root = AptRoot::Document { name: "b.xml".into(), lcl: LclId(2) };
        assert_ne!(base.fingerprint(), doc.fingerprint());
        assert_ne!(
            Apt::extending(LclId(2)).fingerprint(),
            Apt::for_document("x", LclId(2)).fingerprint()
        );
    }

    #[test]
    fn fingerprint_distinguishes_string_predicates_unambiguously() {
        // Same concatenation, different (op, literal) splits must not
        // collide: length prefixes keep literals self-delimiting.
        let mk = |s: &str| {
            let mut apt = Apt::extending(LclId(1));
            apt.add(
                None,
                AxisRel::Child,
                MSpec::One,
                TagId(5),
                Some(ContentPred { op: CmpOp::Eq, value: PredValue::Str(s.into()) }),
                LclId(2),
            );
            apt
        };
        assert_ne!(mk("ab").fingerprint(), mk("a").fingerprint());
        assert_eq!(mk("ab").fingerprint(), mk("ab").fingerprint());
    }
}
