//! Logical plans: trees of TLC operators.
//!
//! A [`Plan`] corresponds to the operator boxes of Figures 7/8/10/12. Plans
//! are built by the translator ([`mod@crate::translate`]), optionally rewritten
//! ([`crate::rewrite`]), and evaluated by [`crate::exec`].

use crate::logical_class::LclId;
use crate::ops::construct::ConstructItem;
use crate::ops::dupelim::DedupKind;
use crate::ops::filter::{FilterMode, FilterPred};
use crate::ops::join::JoinSpec;
use crate::ops::sort::SortKey;
use crate::pattern::Apt;
use std::fmt;
use xmldb::Database;
use xquery::AggFunc;

/// A TLC logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Select against base data or as a pattern extension (routed by the
    /// APT's anchor; a document-anchored select ignores `input`).
    Select {
        /// Upstream operator; `None` for document-anchored selects.
        input: Option<Box<Plan>>,
        /// The annotated pattern tree.
        apt: Apt,
    },
    /// Filter with a predicate and iteration mode.
    Filter {
        /// Upstream operator.
        input: Box<Plan>,
        /// The tested class.
        lcl: LclId,
        /// The predicate.
        pred: FilterPred,
        /// Iteration mode.
        mode: FilterMode,
    },
    /// Value join of two inputs under a new `join_root`.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join parameters.
        spec: JoinSpec,
    },
    /// Projection onto a set of classes.
    Project {
        /// Upstream operator.
        input: Box<Plan>,
        /// Classes to keep.
        keep: Vec<LclId>,
    },
    /// Duplicate elimination.
    DupElim {
        /// Upstream operator.
        input: Box<Plan>,
        /// Key classes.
        on: Vec<LclId>,
        /// Identity vs content comparison.
        kind: DedupKind,
    },
    /// Aggregate function application.
    Aggregate {
        /// Upstream operator.
        input: Box<Plan>,
        /// The function.
        func: AggFunc,
        /// The aggregated class.
        over: LclId,
        /// Label of the created result node.
        new_lcl: LclId,
    },
    /// Result construction.
    Construct {
        /// Upstream operator.
        input: Box<Plan>,
        /// The construct-pattern tree.
        spec: Vec<ConstructItem>,
    },
    /// ORDER BY sort.
    Sort {
        /// Upstream operator.
        input: Box<Plan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Flatten (Definition 5).
    Flatten {
        /// Upstream operator.
        input: Box<Plan>,
        /// The singleton parent class.
        parent: LclId,
        /// The fanned-out child class.
        child: LclId,
    },
    /// Shadow (Definition 6).
    Shadow {
        /// Upstream operator.
        input: Box<Plan>,
        /// The singleton parent class.
        parent: LclId,
        /// The fanned-out child class.
        child: LclId,
    },
    /// Illuminate (Definition 7).
    Illuminate {
        /// Upstream operator.
        input: Box<Plan>,
        /// The class to un-shadow.
        lcl: LclId,
    },
    /// Union of alternative branches (OR translation), deduplicated on the
    /// given classes.
    Union {
        /// The branches.
        inputs: Vec<Plan>,
        /// Node-id dedup keys.
        dedup_on: Vec<LclId>,
    },
    /// The TAX/GTP grouping procedure (split / group / merge; see
    /// [`mod@crate::ops::grouping`]). Not emitted by TLC-style translation.
    GroupBy {
        /// Upstream operator.
        input: Box<Plan>,
        /// Grouping key class (singleton).
        by: LclId,
        /// Clustered class.
        collect: LclId,
    },
    /// TAX's early materialization (see [`mod@crate::ops::materialize`]).
    Materialize {
        /// Upstream operator.
        input: Box<Plan>,
        /// Classes whose members' stored subtrees are copied in.
        lcls: Vec<LclId>,
    },
}

impl Plan {
    /// Number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        1 + match self {
            Plan::Select { input, .. } => input.as_deref().map_or(0, Plan::operator_count),
            Plan::Join { left, right, .. } => left.operator_count() + right.operator_count(),
            Plan::Union { inputs, .. } => inputs.iter().map(Plan::operator_count).sum(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::DupElim { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Construct { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Flatten { input, .. }
            | Plan::Shadow { input, .. }
            | Plan::Illuminate { input, .. }
            | Plan::GroupBy { input, .. }
            | Plan::Materialize { input, .. } => input.operator_count(),
        }
    }

    /// Number of Select operators (≈ pattern matches the plan will run) —
    /// the redundancy metric of §4.
    pub fn select_count(&self) -> usize {
        let own = usize::from(matches!(self, Plan::Select { .. }));
        own + match self {
            Plan::Select { input, .. } => input.as_deref().map_or(0, Plan::select_count),
            Plan::Join { left, right, .. } => left.select_count() + right.select_count(),
            Plan::Union { inputs, .. } => inputs.iter().map(Plan::select_count).sum(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::DupElim { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Construct { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Flatten { input, .. }
            | Plan::Shadow { input, .. }
            | Plan::Illuminate { input, .. }
            | Plan::GroupBy { input, .. }
            | Plan::Materialize { input, .. } => input.select_count(),
        }
    }

    /// The operator's direct input plans, in left-to-right order (empty for
    /// a document-rooted Select). The uniform child accessor every plan
    /// walker builds on.
    pub fn inputs(&self) -> Vec<&Plan> {
        match self {
            Plan::Select { input, .. } => input.as_deref().into_iter().collect(),
            Plan::Join { left, right, .. } => vec![left, right],
            Plan::Union { inputs, .. } => inputs.iter().collect(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::DupElim { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Construct { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Flatten { input, .. }
            | Plan::Shadow { input, .. }
            | Plan::Illuminate { input, .. }
            | Plan::GroupBy { input, .. }
            | Plan::Materialize { input, .. } => vec![input],
        }
    }

    /// Pretty multi-line rendering (operators indented, bottom-up order like
    /// the paper's figures read top-down here).
    pub fn display<'a>(&'a self, db: Option<&'a Database>) -> PlanDisplay<'a> {
        PlanDisplay { plan: self, db }
    }
}

/// Display adapter for [`Plan`].
pub struct PlanDisplay<'a> {
    plan: &'a Plan,
    db: Option<&'a Database>,
}

impl fmt::Display for PlanDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_plan(f, self.plan, self.db, 0)
    }
}

fn write_plan(
    f: &mut fmt::Formatter<'_>,
    p: &Plan,
    db: Option<&Database>,
    depth: usize,
) -> fmt::Result {
    let pad = "  ".repeat(depth);
    match p {
        Plan::Select { input, apt } => {
            writeln!(f, "{pad}Select[{}]", apt.display(db))?;
            if let Some(i) = input {
                write_plan(f, i, db, depth + 1)?;
            }
            Ok(())
        }
        Plan::Filter { input, lcl, pred, mode } => {
            writeln!(f, "{pad}Filter[{lcl} {pred:?} mode={mode:?}]")?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Join { left, right, spec } => {
            writeln!(
                f,
                "{pad}Join[root={} right={} pred={:?} dedup={:?}]",
                spec.root_lcl, spec.right_mspec, spec.pred, spec.dedup_right_on
            )?;
            write_plan(f, left, db, depth + 1)?;
            write_plan(f, right, db, depth + 1)
        }
        Plan::Project { input, keep } => {
            let keeps: Vec<String> = keep.iter().map(|k| k.to_string()).collect();
            writeln!(f, "{pad}Project[keep {}]", keeps.join(", "))?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::DupElim { input, on, kind } => {
            let keys: Vec<String> = on.iter().map(|k| k.to_string()).collect();
            writeln!(f, "{pad}DupElim[{:?} on {}]", kind, keys.join(", "))?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Aggregate { input, func, over, new_lcl } => {
            writeln!(f, "{pad}Aggregate[{}({over}) -> {new_lcl}]", func.name())?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Construct { input, spec } => {
            writeln!(f, "{pad}Construct[{} item(s)]", spec.len())?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Sort { input, keys } => {
            writeln!(f, "{pad}Sort[{} key(s)]", keys.len())?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Flatten { input, parent, child } => {
            writeln!(f, "{pad}Flatten[{parent}, {child}]")?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Shadow { input, parent, child } => {
            writeln!(f, "{pad}Shadow[{parent}, {child}]")?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Illuminate { input, lcl } => {
            writeln!(f, "{pad}Illuminate[{lcl}]")?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::GroupBy { input, by, collect } => {
            writeln!(f, "{pad}GroupBy[by {by} collect {collect}]")?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Materialize { input, lcls } => {
            let keys: Vec<String> = lcls.iter().map(|k| k.to_string()).collect();
            writeln!(f, "{pad}Materialize[{}]", keys.join(", "))?;
            write_plan(f, input, db, depth + 1)
        }
        Plan::Union { inputs, dedup_on } => {
            let keys: Vec<String> = dedup_on.iter().map(|k| k.to_string()).collect();
            writeln!(f, "{pad}Union[dedup {}]", keys.join(", "))?;
            for i in inputs {
                write_plan(f, i, db, depth + 1)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Apt;

    fn leaf() -> Plan {
        Plan::Select { input: None, apt: Apt::for_document("a.xml", LclId(1)) }
    }

    #[test]
    fn operator_and_select_counts() {
        let p = Plan::Project {
            input: Box::new(Plan::Join {
                left: Box::new(leaf()),
                right: Box::new(leaf()),
                spec: JoinSpec {
                    root_lcl: LclId(9),
                    right_mspec: crate::pattern::MSpec::One,
                    pred: None,
                    dedup_right_on: None,
                },
            }),
            keep: vec![LclId(1)],
        };
        assert_eq!(p.operator_count(), 4);
        assert_eq!(p.select_count(), 2);
    }

    #[test]
    fn display_renders_tree() {
        let p = Plan::Project { input: Box::new(leaf()), keep: vec![LclId(1), LclId(2)] };
        let s = p.display(None).to_string();
        assert!(s.contains("Project[keep (1), (2)]"));
        assert!(s.contains("Select["));
    }
}
