//! Annotated-pattern-tree matching (Definition 3, implemented per §5.2).
//!
//! Matching runs top-down over the pattern with index-driven candidate
//! generation: for every bound data node and pattern child, the candidate
//! set is an interval slice of the child's tag-index postings (or, when the
//! child carries an indexable content predicate, of the value-index
//! postings) — exactly the access pattern of a merge-based structural join.
//! Matching specifications decide how candidates combine:
//!
//! * `-` / `?` edges fan out: each candidate yields a separate witness tree
//!   (the regular / left-outer structural join of §5.2);
//! * `+` / `*` edges cluster: all candidates join the same witness tree (the
//!   nest / left-outer-nest structural join).
//!
//! One documented deviation from the letter of Definition 3: under a
//! grouping edge, a candidate that fails a *required* edge further down is
//! dropped from the cluster rather than killing the whole witness tree. This
//! matches how the paper's own plans use grouped nodes (e.g.
//! `bidder//@person` in Figure 7, where bidders without a person reference
//! simply contribute nothing).

use crate::error::{Error, Result};
use crate::exec::ExecCtx;
use crate::logical_class::LclId;
use crate::pattern::{Apt, AptNode, AptRoot, ContentPred, MSpec, PredValue};
use crate::physical::structural::{candidates_in, INode};
use crate::tree::{RNodeId, RSource, ResultTree};
use std::cmp::Ordering;
use xmldb::{AxisRel, Database, NodeId};
use xquery::CmpOp;

/// One matched pattern node with its matched descendants.
#[derive(Debug, Clone)]
struct Frag {
    pat: usize,
    node: NodeId,
    children: Vec<Frag>,
}

/// Matches an APT anchored at a document root, producing one witness tree
/// per match alternative (Select on base data).
pub fn match_apt_database(db: &Database, apt: &Apt, ctx: &mut ExecCtx) -> Result<Vec<ResultTree>> {
    let AptRoot::Document { name, lcl } = &apt.root else {
        return Err(Error::Unsupported("database match requires a document-rooted APT".into()));
    };
    let doc_id = db.document_by_name(name).map_err(|_| Error::UnknownDocument(name.clone()))?;
    ctx.stats.pattern_matches += 1;
    let root = db.root(doc_id);
    let anchor = INode::of(db, root);
    let mut out = ctx.alloc_trees();
    let mut m = Matcher::new(db, apt, ctx);
    let Some(alts) = m.expand(None, &anchor)? else {
        m.finish();
        return Ok(out);
    };
    out.reserve(alts.len());
    for alt in alts {
        let mut tree = ResultTree::with_root(RSource::Base(root));
        tree.assign_lcl(tree.root(), *lcl);
        let tree_root = tree.root();
        attach_frags(&mut tree, tree_root, &alt, apt);
        out.push(tree);
    }
    m.ctx.stats.trees_built += out.len() as u64;
    m.finish();
    Ok(out)
}

/// Matches an APT anchored at an existing logical class, extending each
/// input tree (pattern-tree reuse, §4.1). Trees whose anchor fails a
/// required edge are dropped; grouping edges extend the tree in place.
pub fn match_apt_extend(
    db: &Database,
    apt: &Apt,
    mut inputs: Vec<ResultTree>,
    ctx: &mut ExecCtx,
) -> Result<Vec<ResultTree>> {
    let AptRoot::Lcl(lcl) = &apt.root else {
        return Err(Error::Unsupported("extension match requires an LCL-rooted APT".into()));
    };
    ctx.stats.pattern_matches += 1;
    let mut out = ctx.alloc_trees();
    out.reserve(inputs.len());
    let mut m = Matcher::new(db, apt, ctx);
    'tree: for tree in inputs.drain(..) {
        let anchors = tree.members(*lcl);
        // Per-anchor alternatives; the tree fans out over their product.
        let mut per_anchor: Vec<(RNodeId, Vec<Vec<Frag>>)> = Vec::with_capacity(anchors.len());
        for a in anchors {
            let base = match &tree.node(a).source {
                RSource::Base(id) => *id,
                RSource::Temp { .. } => return Err(Error::TempAnchor(*lcl)),
            };
            let anchor = INode::of(db, base);
            match m.expand(None, &anchor)? {
                Some(alts) => per_anchor.push((a, alts)),
                // A required (non-optional) edge failed for this anchor: the
                // whole input tree is filtered out.
                None => continue 'tree,
            }
        }
        // Cartesian product over anchors.
        let mut combos: Vec<Vec<(RNodeId, Vec<Frag>)>> = vec![Vec::new()];
        for (anchor, alts) in &per_anchor {
            let mut next = Vec::with_capacity(combos.len() * alts.len());
            for combo in &combos {
                for alt in alts {
                    let mut c = combo.clone();
                    c.push((*anchor, alt.clone()));
                    next.push(c);
                }
            }
            combos = next;
        }
        for combo in combos {
            let mut t = tree.clone();
            for (anchor, alt) in combo {
                attach_frags(&mut t, anchor, &alt, apt);
            }
            m.ctx.stats.trees_built += 1;
            out.push(t);
        }
    }
    m.ctx.free_trees(inputs);
    m.finish();
    Ok(out)
}

fn attach_frags(tree: &mut ResultTree, under: RNodeId, frags: &[Frag], apt: &Apt) {
    for f in frags {
        let id = tree.add_node(under, RSource::Base(f.node));
        tree.assign_lcl(id, apt.nodes[f.pat].lcl);
        attach_frags(tree, id, &f.children, apt);
    }
}

struct Matcher<'a> {
    db: &'a Database,
    apt: &'a Apt,
    ctx: &'a mut ExecCtx,
    /// Per-pattern-node value-index postings, computed once per match run.
    /// Without this cache a value-index lookup would be re-materialized for
    /// every (bound node, pattern child) probe, turning selective patterns
    /// quadratic.
    postings: Vec<Option<Option<Vec<NodeId>>>>,
    /// Canonical per-node forms ([`Apt::canonical_forms`]), the final
    /// tiebreak of the child evaluation order. With a declaration-order
    /// tiebreak two APTs equal up to sibling reordering could enumerate
    /// witness trees in different orders, which would make the shared match
    /// cache (keyed by the order-insensitive fingerprint) unsound.
    forms: Vec<String>,
}

impl<'a> Matcher<'a> {
    fn new(db: &'a Database, apt: &'a Apt, ctx: &'a mut ExecCtx) -> Self {
        let postings = vec![None; apt.nodes.len()];
        let forms = apt.canonical_forms();
        Matcher { db, apt, ctx, postings, forms }
    }

    /// Donates the per-run value-posting buffers to the arena's candidate
    /// free list — they are plain `NodeId` vectors, so later candidate
    /// takes reuse their capacity. Stats-neutral: the buffers were
    /// allocated by the index lookups, not taken from the arena.
    fn finish(mut self) {
        for slot in self.postings.drain(..) {
            if let Some(Some(buf)) = slot {
                self.ctx.arena.give_nodes(buf);
            }
        }
    }
}

impl Matcher<'_> {
    /// Alternatives for the children of pattern node `parent_pat` when it is
    /// bound to `x`. `Ok(None)` = a required edge failed, killing this
    /// binding; `Err` propagates a deadline expiry out of the match.
    ///
    /// Children are evaluated in a selectivity-driven order (required edges
    /// before optional ones, smaller tag-posting lists first, canonical form
    /// as the tiebreak) so that a binding destined to fail a required edge
    /// is discarded before the expensive branches run — the join-order
    /// concern the paper defers to an optimizer (§5.2, citing reference
    /// \[19\]). The order is a function of the pattern's canonical form
    /// alone, never of declaration order, so reordered-sibling APTs produce
    /// byte-identical results; per-class member order still comes from the
    /// document-ordered candidate streams.
    fn expand(&mut self, parent_pat: Option<usize>, x: &INode) -> Result<Option<Vec<Vec<Frag>>>> {
        let mut alts: Vec<Vec<Frag>> = vec![Vec::new()];
        let mut kids: Vec<usize> = self.apt.children_of(parent_pat).collect();
        let key = |v: usize| {
            let n = &self.apt.nodes[v];
            (n.mspec.optional(), self.db.tag_index().get(n.tag).len())
        };
        kids.sort_by(|&a, &b| key(a).cmp(&key(b)).then_with(|| self.forms[a].cmp(&self.forms[b])));
        for v in kids {
            let Some(options) = self.child_options(v, x)? else {
                return Ok(None);
            };
            let mut next = Vec::with_capacity(alts.len().saturating_mul(options.len()));
            for a in &alts {
                for o in &options {
                    let mut merged = Vec::with_capacity(a.len() + o.len());
                    merged.extend_from_slice(a);
                    merged.extend_from_slice(o);
                    next.push(merged);
                }
            }
            alts = next;
        }
        Ok(Some(alts))
    }

    /// Options contributed by pattern child `v` for a parent bound to `x`.
    /// Each option is the set of `v`-fragments present in one witness tree.
    fn child_options(&mut self, v: usize, x: &INode) -> Result<Option<Vec<Vec<Frag>>>> {
        let mut cands = self.candidates(v, x)?;
        let pat = &self.apt.nodes[v];
        // Fast path for leaf pattern nodes (the common case for grouped
        // aggregate arguments like `count($s//item)`): every candidate is a
        // complete match, no recursion or sub-alternative bookkeeping.
        if self.apt.children_of(Some(v)).next().is_none() {
            let frag = |c: NodeId| Frag { pat: v, node: c, children: Vec::new() };
            let opts = match pat.mspec {
                MSpec::One | MSpec::Opt => {
                    if cands.is_empty() {
                        if pat.mspec == MSpec::Opt {
                            Some(vec![Vec::new()])
                        } else {
                            None
                        }
                    } else {
                        Some(cands.drain(..).map(|c| vec![frag(c)]).collect())
                    }
                }
                MSpec::Plus | MSpec::Star => {
                    if cands.is_empty() && pat.mspec == MSpec::Plus {
                        None
                    } else {
                        Some(vec![cands.drain(..).map(frag).collect()])
                    }
                }
            };
            self.ctx.free_nodes(cands);
            return Ok(opts);
        }
        // Recursively match below each candidate; failed candidates drop out.
        let mut per_cand: Vec<(NodeId, Vec<Vec<Frag>>)> = Vec::with_capacity(cands.len());
        for c in cands.drain(..) {
            let c_inode = INode::of(self.db, c);
            if let Some(sub) = self.expand(Some(v), &c_inode)? {
                per_cand.push((c, sub));
            }
        }
        self.ctx.free_nodes(cands);
        Ok(match pat.mspec {
            MSpec::One | MSpec::Opt => {
                let mut opts = Vec::new();
                for (c, subs) in per_cand {
                    for sub in subs {
                        opts.push(vec![Frag { pat: v, node: c, children: sub }]);
                    }
                }
                if opts.is_empty() {
                    if pat.mspec == MSpec::Opt {
                        Some(vec![Vec::new()])
                    } else {
                        None
                    }
                } else {
                    Some(opts)
                }
            }
            MSpec::Plus | MSpec::Star => {
                if per_cand.is_empty() {
                    if pat.mspec == MSpec::Star {
                        Some(vec![Vec::new()])
                    } else {
                        None
                    }
                } else {
                    // All candidates cluster into each option; candidates
                    // with several sub-alternatives multiply the options.
                    let mut opts: Vec<Vec<Frag>> = vec![Vec::new()];
                    for (c, subs) in per_cand {
                        let mut next = Vec::with_capacity(opts.len() * subs.len());
                        for o in &opts {
                            for sub in &subs {
                                let mut merged = o.clone();
                                merged.push(Frag { pat: v, node: c, children: sub.clone() });
                                next.push(merged);
                            }
                        }
                        opts = next;
                    }
                    Some(opts)
                }
            }
        })
    }

    /// Candidate data nodes for pattern node `v` under `x`, in document
    /// order: an interval slice of the appropriate index postings, filtered
    /// by axis and any non-index-served predicate. Fails only on deadline
    /// expiry (checked every few hundred candidates via [`ExecCtx::tick`]).
    fn candidates(&mut self, v: usize, x: &INode) -> Result<Vec<NodeId>> {
        // `db` and `apt` are `&'a` fields, so borrows through them detach
        // from `self` — `pat` and the tag-index slice stay live across the
        // `self.ctx`/`self.postings` borrows below.
        let db = self.db;
        let pat = &self.apt.nodes[v];
        self.ctx.stats.probes += 1;
        if self.postings[v].is_none() {
            let value_list = indexed_postings(db, pat);
            if value_list.is_some() {
                // Materializing value-index postings is the fetch; later
                // probes reuse the per-run copy.
                self.ctx.stats.candidate_fetches += 1;
            }
            self.postings[v] = Some(value_list);
        }
        let value_postings = self.postings[v].as_ref().expect("just filled");
        let (slice, pred_served): (&[NodeId], bool) = match value_postings {
            // Value-index postings cover the whole database; restrict to x.
            Some(list) => {
                self.ctx.stats.struct_cmps += interval_search_cmps(list.len());
                (candidates_in(list, x), true)
            }
            None => {
                let postings = db.tag_index().get(pat.tag);
                self.ctx.stats.candidate_fetches += 1;
                self.ctx.stats.struct_cmps += interval_search_cmps(postings.len());
                (candidates_in(postings, x), false)
            }
        };
        let mut out = self.ctx.alloc_nodes();
        out.reserve(slice.len());
        // Shard anchor-range restriction (see crate::par): candidates of
        // the shard anchor class outside this shard's pre-order window
        // belong to sibling shards. Class labels are plan-unique, so no
        // other pattern node can be filtered by accident.
        let range = self.ctx.anchor_range.filter(|ar| ar.lcl == pat.lcl).map(|ar| ar.range);
        for &id in slice {
            self.ctx.tick()?;
            self.ctx.stats.nodes_inspected += 1;
            self.ctx.stats.struct_cmps += 1;
            if let Some(r) = range {
                if !r.contains(id) {
                    continue;
                }
            }
            if pat.axis == AxisRel::Child {
                let level = db.node(id).level();
                if level != x.level + 1 {
                    continue;
                }
            }
            if !pred_served {
                if let Some(p) = &pat.pred {
                    if !p.eval_node(db, id) {
                        continue;
                    }
                }
            }
            out.push(id);
        }
        Ok(out)
    }
}

/// Comparisons performed by the two interval binary searches that slice a
/// postings list to a subtree window (`candidates_in`): ~2·log₂(n).
fn interval_search_cmps(n: usize) -> u64 {
    2 * u64::from(usize::BITS - n.leading_zeros())
}

/// Returns value-index postings serving this pattern node's predicate, when
/// the predicate is indexable (exact string match or numeric comparison).
fn indexed_postings(db: &Database, pat: &AptNode) -> Option<Vec<NodeId>> {
    let pred = pat.pred.as_ref()?;
    match (&pred.value, pred.op) {
        (PredValue::Str(s), CmpOp::Eq) => Some(db.value_index().lookup_exact(pat.tag, s).to_vec()),
        (PredValue::Num(n), CmpOp::Eq) => {
            Some(db.value_index().lookup_cmp(pat.tag, Ordering::Equal, *n))
        }
        (PredValue::Num(n), CmpOp::Lt) => {
            Some(db.value_index().lookup_cmp(pat.tag, Ordering::Less, *n))
        }
        (PredValue::Num(n), CmpOp::Gt) => {
            Some(db.value_index().lookup_cmp(pat.tag, Ordering::Greater, *n))
        }
        (PredValue::Num(n), CmpOp::Le) => {
            Some(db.value_index().lookup_range(pat.tag, None, Some(*n)))
        }
        (PredValue::Num(n), CmpOp::Ge) => {
            Some(db.value_index().lookup_range(pat.tag, Some(*n), None))
        }
        _ => None,
    }
}

/// Convenience for tests and hand-built plans: evaluates the "predicate"
/// (tag + content test) of a content predicate on a base node.
pub fn eval_content_pred(db: &Database, pred: &ContentPred, node: NodeId) -> bool {
    pred.eval_node(db, node)
}

/// Resolves a class label to the base `NodeId` of its singleton member.
pub fn singleton_base(tree: &ResultTree, lcl: LclId) -> Result<NodeId> {
    let members = tree.members(lcl);
    if members.len() != 1 {
        return Err(Error::NotSingleton { lcl, found: members.len() });
    }
    match &tree.node(members[0]).source {
        RSource::Base(id) => Ok(*id),
        RSource::Temp { .. } => Err(Error::TempAnchor(lcl)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::TagId;

    /// The Figure 4 input forest:
    ///   tree 1: B1 with children A1, A2, E1(desc A1... simplified), C1, D1, D2
    ///   We reproduce the paper's example structure faithfully below.
    fn fig4_db() -> Database {
        let mut db = Database::new();
        // First input tree: B1 has children A1 (with E1, E2 below at depth),
        // A2, C1, D1, D2. Second: B2 with A3 (E3 below), C3.
        db.load_xml(
            "fig4.xml",
            "<root>\
               <B><A><E/><E/></A><A/><C/><D/><D/></B>\
               <B><A><E/></A><C/></B>\
             </root>",
        )
        .unwrap();
        db
    }

    fn tag(db: &Database, name: &str) -> TagId {
        db.interner().lookup(name).unwrap()
    }

    /// Builds the Figure 4 APT: B with children A('+'), C('-'), D('?');
    /// A has descendant E('+').
    fn fig4_apt(db: &Database) -> Apt {
        let mut apt = Apt::for_document("fig4.xml", LclId(1));
        let b = apt.add(None, AxisRel::Descendant, MSpec::One, tag(db, "B"), None, LclId(2));
        let a = apt.add(Some(b), AxisRel::Child, MSpec::Plus, tag(db, "A"), None, LclId(3));
        apt.add(Some(a), AxisRel::Descendant, MSpec::Plus, tag(db, "E"), None, LclId(4));
        apt.add(Some(b), AxisRel::Child, MSpec::One, tag(db, "C"), None, LclId(5));
        apt.add(Some(b), AxisRel::Child, MSpec::Opt, tag(db, "D"), None, LclId(6));
        apt
    }

    #[test]
    fn figure_4_match_shape() {
        let db = fig4_db();
        let apt = fig4_apt(&db);
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &apt, &mut ctx).unwrap();
        // First B: A1 (has E) qualifies for '+'; A2 (no E) is dropped from
        // the cluster; D1, D2 fan out via '?' → two witness trees.
        // Second B: one witness tree (no D ⇒ optional edge lets it through).
        assert_eq!(trees.len(), 3);
        for t in &trees {
            t.check_invariants().unwrap();
            assert_eq!(t.members(LclId(2)).len(), 1, "B is a '-' match");
            assert_eq!(t.members(LclId(5)).len(), 1, "C is a '-' match");
        }
        let d_counts: Vec<usize> = trees.iter().map(|t| t.members(LclId(6)).len()).collect();
        assert_eq!(d_counts.iter().sum::<usize>(), 2, "D1 and D2 in separate trees");
        assert!(d_counts.contains(&0), "the D-less B still matches via '?'");
        // E nodes cluster: first B's witness trees have 2 Es, second has 1.
        let e_counts: Vec<usize> = trees.iter().map(|t| t.members(LclId(4)).len()).collect();
        assert_eq!(e_counts.iter().filter(|&&c| c == 2).count(), 2);
        assert_eq!(e_counts.iter().filter(|&&c| c == 1).count(), 1);
        assert!(ctx.stats.pattern_matches == 1 && ctx.stats.probes > 0);
    }

    #[test]
    fn required_edge_failure_kills_the_binding() {
        let db = fig4_db();
        let mut apt = Apt::for_document("fig4.xml", LclId(1));
        let b = apt.add(None, AxisRel::Descendant, MSpec::One, tag(&db, "B"), None, LclId(2));
        apt.add(Some(b), AxisRel::Child, MSpec::One, tag(&db, "D"), None, LclId(3));
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &apt, &mut ctx).unwrap();
        // Only the first B has D children; two of them fan out.
        assert_eq!(trees.len(), 2);
    }

    #[test]
    fn plus_edge_requires_at_least_one() {
        let db = fig4_db();
        let mut apt = Apt::for_document("fig4.xml", LclId(1));
        let b = apt.add(None, AxisRel::Descendant, MSpec::One, tag(&db, "B"), None, LclId(2));
        apt.add(Some(b), AxisRel::Child, MSpec::Plus, tag(&db, "D"), None, LclId(3));
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &apt, &mut ctx).unwrap();
        assert_eq!(trees.len(), 1, "only the D-bearing B survives '+'");
        assert_eq!(trees[0].members(LclId(3)).len(), 2, "both Ds clustered");
    }

    #[test]
    fn star_edge_clusters_and_keeps_empty() {
        let db = fig4_db();
        let mut apt = Apt::for_document("fig4.xml", LclId(1));
        let b = apt.add(None, AxisRel::Descendant, MSpec::One, tag(&db, "B"), None, LclId(2));
        apt.add(Some(b), AxisRel::Child, MSpec::Star, tag(&db, "D"), None, LclId(3));
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &apt, &mut ctx).unwrap();
        assert_eq!(trees.len(), 2);
        let mut counts: Vec<usize> = trees.iter().map(|t| t.members(LclId(3)).len()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![0, 2]);
    }

    #[test]
    fn content_predicates_filter_candidates() {
        let mut db = Database::new();
        db.load_xml("p.xml", "<ps><p><age>30</age></p><p><age>20</age></p><p/></ps>").unwrap();
        let mut apt = Apt::for_document("p.xml", LclId(1));
        let p = apt.add(None, AxisRel::Descendant, MSpec::One, tag(&db, "p"), None, LclId(2));
        apt.add(
            Some(p),
            AxisRel::Child,
            MSpec::One,
            tag(&db, "age"),
            Some(ContentPred { op: CmpOp::Gt, value: PredValue::Num(25.0) }),
            LclId(3),
        );
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &apt, &mut ctx).unwrap();
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn extension_match_extends_input_trees() {
        let db = fig4_db();
        // Base select: each B.
        let mut base = Apt::for_document("fig4.xml", LclId(1));
        base.add(None, AxisRel::Descendant, MSpec::One, tag(&db, "B"), None, LclId(2));
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &base, &mut ctx).unwrap();
        assert_eq!(trees.len(), 2);
        // Extension: cluster all A children of class (2) with '*'.
        let mut ext = Apt::extending(LclId(2));
        ext.add(None, AxisRel::Child, MSpec::Star, tag(&db, "A"), None, LclId(7));
        let extended = match_apt_extend(&db, &ext, trees, &mut ctx).unwrap();
        assert_eq!(extended.len(), 2);
        let mut counts: Vec<usize> = extended.iter().map(|t| t.members(LclId(7)).len()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
        for t in &extended {
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn extension_with_required_edge_drops_trees() {
        let db = fig4_db();
        let mut base = Apt::for_document("fig4.xml", LclId(1));
        base.add(None, AxisRel::Descendant, MSpec::One, tag(&db, "B"), None, LclId(2));
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &base, &mut ctx).unwrap();
        let mut ext = Apt::extending(LclId(2));
        ext.add(None, AxisRel::Child, MSpec::One, tag(&db, "D"), None, LclId(7));
        let extended = match_apt_extend(&db, &ext, trees, &mut ctx).unwrap();
        // Only the first B has Ds; '-' fans out to two extended trees.
        assert_eq!(extended.len(), 2);
        for t in &extended {
            assert_eq!(t.members(LclId(7)).len(), 1);
        }
    }

    #[test]
    fn unknown_document_is_an_error() {
        let db = fig4_db();
        let apt = Apt::for_document("nope.xml", LclId(1));
        let mut ctx = ExecCtx::new();
        assert!(matches!(match_apt_database(&db, &apt, &mut ctx), Err(Error::UnknownDocument(_))));
    }

    #[test]
    fn value_index_served_predicates() {
        let mut db = Database::new();
        db.load_xml("v.xml", "<ps><p id=\"a\"/><p id=\"b\"/><p id=\"a\"/></ps>").unwrap();
        let mut apt = Apt::for_document("v.xml", LclId(1));
        let p = apt.add(None, AxisRel::Descendant, MSpec::One, tag(&db, "p"), None, LclId(2));
        apt.add(
            Some(p),
            AxisRel::Child,
            MSpec::One,
            tag(&db, "@id"),
            Some(ContentPred { op: CmpOp::Eq, value: PredValue::Str("a".into()) }),
            LclId(3),
        );
        let mut ctx = ExecCtx::new();
        let trees = match_apt_database(&db, &apt, &mut ctx).unwrap();
        assert_eq!(trees.len(), 2);
    }
}
