//! Intermediate-result trees.
//!
//! Every TLC operator maps sets of [`ResultTree`]s to sets of
//! [`ResultTree`]s. A result tree is a small arena of nodes, each of which is
//! either a reference to a *base* node in the store (its full stored subtree
//! implied) or a *temporary* node created during execution (join roots,
//! aggregate results, constructed elements — see §5.1 on temporary node
//! identifiers).
//!
//! Each node carries the set of logical classes it belongs to and a
//! `shadowed` flag (§4.3): shadowed nodes remain class members but are
//! invisible to every operator except Illuminate.

use crate::logical_class::LclId;
use std::collections::HashMap;
use xmldb::{Database, NodeId, TagId, TempId};

/// Index of a node within one [`ResultTree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RNodeId(pub u32);

/// Generator for temporary node identifiers (paper §5.1, Property 4): a
/// plain monotone counter, so temporaries are unique and creation-ordered
/// without ever renumbering base nodes.
#[derive(Debug, Default)]
pub struct TempIdGen {
    next: u64,
}

impl TempIdGen {
    /// Fresh generator.
    pub fn new() -> Self {
        TempIdGen::default()
    }

    /// Generator whose ids start at `base` — shard executions seed sibling
    /// shards with disjoint high ranges so temporary idents minted on
    /// different threads can never alias (see [`mod@crate::par`]).
    pub fn starting_at(base: u64) -> Self {
        TempIdGen { next: base }
    }

    /// Next temporary id.
    pub fn fresh(&mut self) -> TempId {
        let id = TempId(self.next);
        self.next += 1;
        id
    }
}

/// What a result-tree node stands for.
#[derive(Debug, Clone, PartialEq)]
pub enum RSource {
    /// A stored node; its full stored subtree is implied at output time.
    Base(NodeId),
    /// A temporary node created during execution.
    Temp {
        /// Unique creation-ordered identifier.
        id: TempId,
        /// Tag of the temporary (e.g. `join_root`, a constructed tag, or an
        /// aggregate-function name).
        tag: TagId,
        /// Inline content (aggregate values, copied text).
        content: Option<Box<str>>,
    },
}

/// Identity key used for node-id duplicate elimination and ordering:
/// base nodes order by document position, temporaries by creation order.
/// Base nodes sort before temporaries (temporaries are "later" than any
/// document content, which preserves document order of base data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdentKey {
    /// A base node's document-order identity.
    Base(NodeId),
    /// A temporary node's creation identity.
    Temp(TempId),
}

/// One node in a result tree.
#[derive(Debug, Clone)]
pub struct RNode {
    /// What the node is.
    pub source: RSource,
    /// Parent within the result tree.
    pub parent: Option<RNodeId>,
    /// Explicit children within the result tree (document order for matched
    /// siblings; construction order for temporaries).
    pub children: Vec<RNodeId>,
    /// Logical classes this node belongs to (usually exactly one).
    pub lcls: Vec<LclId>,
    /// Shadow flag (§4.3). Shadowed nodes are skipped by every accessor
    /// except the `_all` variants used by Illuminate.
    pub shadowed: bool,
}

impl RNode {
    /// The node's identity key.
    pub fn ident(&self) -> IdentKey {
        match &self.source {
            RSource::Base(id) => IdentKey::Base(*id),
            RSource::Temp { id, .. } => IdentKey::Temp(*id),
        }
    }
}

/// An intermediate-result tree: node arena + logical-class reduction.
#[derive(Debug, Clone, Default)]
pub struct ResultTree {
    nodes: Vec<RNode>,
    classes: HashMap<LclId, Vec<RNodeId>>,
}

impl ResultTree {
    /// Creates a tree with a single root node.
    pub fn with_root(source: RSource) -> ResultTree {
        ResultTree {
            nodes: vec![RNode {
                source,
                parent: None,
                children: Vec::new(),
                lcls: Vec::new(),
                shadowed: false,
            }],
            classes: HashMap::new(),
        }
    }

    /// The root node (index 0 by construction).
    pub fn root(&self) -> RNodeId {
        RNodeId(0)
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: RNodeId) -> &RNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena is empty (never for well-formed trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate resident size in bytes: arena nodes plus their child /
    /// class vectors, inline temporary content, and the class map. Used by
    /// byte-budgeted caches; an estimate, not an accounting.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes =
            std::mem::size_of::<ResultTree>() + self.nodes.len() * std::mem::size_of::<RNode>();
        for n in &self.nodes {
            bytes += n.children.len() * std::mem::size_of::<RNodeId>();
            bytes += n.lcls.len() * std::mem::size_of::<LclId>();
            if let RSource::Temp { content: Some(c), .. } = &n.source {
                bytes += c.len();
            }
        }
        for members in self.classes.values() {
            bytes += std::mem::size_of::<(LclId, Vec<RNodeId>)>()
                + members.len() * std::mem::size_of::<RNodeId>();
        }
        bytes
    }

    /// Appends a child node under `parent`; returns its id.
    pub fn add_node(&mut self, parent: RNodeId, source: RSource) -> RNodeId {
        let id = RNodeId(self.nodes.len() as u32);
        self.nodes.push(RNode {
            source,
            parent: Some(parent),
            children: Vec::new(),
            lcls: Vec::new(),
            shadowed: false,
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Registers `node` as a member of `lcl`.
    pub fn assign_lcl(&mut self, node: RNodeId, lcl: LclId) {
        let n = &mut self.nodes[node.0 as usize];
        if !n.lcls.contains(&lcl) {
            n.lcls.push(lcl);
            self.classes.entry(lcl).or_default().push(node);
        }
    }

    /// Visible (non-shadowed) members of a class, in insertion order
    /// (matched members are inserted in document order).
    pub fn members(&self, lcl: LclId) -> Vec<RNodeId> {
        self.classes
            .get(&lcl)
            .map(|v| v.iter().copied().filter(|id| !self.is_shadowed(*id)).collect())
            .unwrap_or_default()
    }

    /// All members of a class, including shadowed ones (Illuminate only).
    pub fn members_all(&self, lcl: LclId) -> &[RNodeId] {
        self.classes.get(&lcl).map_or(&[], Vec::as_slice)
    }

    /// The single visible member of a class, if exactly one exists.
    pub fn singleton(&self, lcl: LclId) -> Option<RNodeId> {
        let m = self.members(lcl);
        (m.len() == 1).then(|| m[0])
    }

    /// The single member of a class counting shadowed nodes — used by Join
    /// for key extraction from hidden construct children.
    pub fn singleton_all(&self, lcl: LclId) -> Option<RNodeId> {
        let m = self.members_all(lcl);
        (m.len() == 1).then(|| m[0])
    }

    /// True when the node or any ancestor carries the shadow flag.
    pub fn is_shadowed(&self, id: RNodeId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = self.node(c);
            if n.shadowed {
                return true;
            }
            cur = n.parent;
        }
        false
    }

    /// Sets or clears the shadow flag on a node (its subtree inherits the
    /// flag implicitly through [`ResultTree::is_shadowed`]).
    pub fn set_shadowed(&mut self, id: RNodeId, value: bool) {
        self.nodes[id.0 as usize].shadowed = value;
    }

    /// Ordering key of the tree: the identity of its root (base roots order
    /// by document position — the paper's Property 3 — and temporary roots
    /// by creation order).
    pub fn order_key(&self) -> IdentKey {
        self.node(self.root()).ident()
    }

    /// Textual value of a node: base nodes read the store, temporaries
    /// concatenate inline content with visible child values.
    pub fn value(&self, db: &Database, id: RNodeId) -> String {
        match &self.node(id).source {
            RSource::Base(n) => db.node(*n).string_value(),
            RSource::Temp { content, .. } => {
                let mut s = content.as_deref().unwrap_or("").to_string();
                for &c in &self.node(id).children {
                    if !self.is_shadowed(c) {
                        s.push_str(&self.value(db, c));
                    }
                }
                s
            }
        }
    }

    /// Numeric value of a node, when the text parses.
    pub fn num(&self, db: &Database, id: RNodeId) -> Option<f64> {
        match &self.node(id).source {
            RSource::Base(n) => db.node(*n).num_value(),
            _ => self.value(db, id).trim().parse().ok(),
        }
    }

    /// Grafts a copy of `other` (entire tree) as the last child of `under`.
    /// Class memberships of the grafted nodes are merged into this tree.
    /// Returns the id of the grafted root.
    pub fn graft(&mut self, other: &ResultTree, under: RNodeId) -> RNodeId {
        let offset = self.nodes.len() as u32;
        for (i, n) in other.nodes.iter().enumerate() {
            let mut n = n.clone();
            n.parent = match n.parent {
                Some(p) => Some(RNodeId(p.0 + offset)),
                None => Some(under),
            };
            for c in &mut n.children {
                c.0 += offset;
            }
            self.nodes.push(n);
            debug_assert_eq!(offset + i as u32, self.nodes.len() as u32 - 1);
        }
        let new_root = RNodeId(other.root().0 + offset);
        self.nodes[under.0 as usize].children.push(new_root);
        for (lcl, mems) in &other.classes {
            let target = self.classes.entry(*lcl).or_default();
            target.extend(mems.iter().map(|m| RNodeId(m.0 + offset)));
        }
        new_root
    }

    /// Produces a copy of the tree without the nodes in `drop` (and their
    /// subtrees). Dropping the root is not allowed.
    pub fn without(&self, drop: &[RNodeId]) -> ResultTree {
        debug_assert!(!drop.contains(&self.root()), "cannot drop the root");
        let mut dead = vec![false; self.nodes.len()];
        for &d in drop {
            dead[d.0 as usize] = true;
        }
        // Propagate to descendants (arena order is not topological after
        // grafts, so walk from each root-reachable node instead).
        self.mark_descendants(self.root(), false, &mut dead);
        self.rebuild(|id| !dead[id.0 as usize])
    }

    fn mark_descendants(&self, at: RNodeId, inherited: bool, dead: &mut [bool]) {
        let is_dead = inherited || dead[at.0 as usize];
        dead[at.0 as usize] = is_dead;
        for &c in &self.node(at).children {
            self.mark_descendants(c, is_dead, dead);
        }
    }

    /// Rebuilds the tree retaining only nodes for which `keep` returns true.
    /// A kept node is re-parented to its nearest kept ancestor; the root is
    /// always kept. Class memberships of dropped nodes are removed.
    pub fn rebuild(&self, keep: impl Fn(RNodeId) -> bool) -> ResultTree {
        let mut map: Vec<Option<RNodeId>> = vec![None; self.nodes.len()];
        let mut out = ResultTree::default();
        self.rebuild_rec(self.root(), None, &keep, &mut map, &mut out);
        for (lcl, mems) in &self.classes {
            for &m in mems {
                if let Some(new) = map[m.0 as usize] {
                    let n = &mut out.nodes[new.0 as usize];
                    if !n.lcls.contains(lcl) {
                        n.lcls.push(*lcl);
                        out.classes.entry(*lcl).or_default().push(new);
                    }
                }
            }
        }
        // Keep class member lists in insertion (document) order of the new arena.
        for mems in out.classes.values_mut() {
            mems.sort_unstable();
        }
        out
    }

    fn rebuild_rec(
        &self,
        at: RNodeId,
        new_parent: Option<RNodeId>,
        keep: &impl Fn(RNodeId) -> bool,
        map: &mut [Option<RNodeId>],
        out: &mut ResultTree,
    ) {
        let n = self.node(at);
        let kept = at == self.root() || keep(at);
        let next_parent = if kept {
            let new = match new_parent {
                None => {
                    out.nodes.push(RNode {
                        source: n.source.clone(),
                        parent: None,
                        children: Vec::new(),
                        lcls: Vec::new(),
                        shadowed: n.shadowed,
                    });
                    RNodeId(0)
                }
                Some(p) => {
                    let id = RNodeId(out.nodes.len() as u32);
                    out.nodes.push(RNode {
                        source: n.source.clone(),
                        parent: Some(p),
                        children: Vec::new(),
                        lcls: Vec::new(),
                        shadowed: n.shadowed,
                    });
                    out.nodes[p.0 as usize].children.push(id);
                    id
                }
            };
            map[at.0 as usize] = Some(new);
            Some(new)
        } else {
            new_parent
        };
        for &c in &n.children {
            self.rebuild_rec(c, next_parent, keep, map, out);
        }
    }

    /// All class labels present in the tree.
    pub fn class_labels(&self) -> impl Iterator<Item = LclId> + '_ {
        self.classes.keys().copied()
    }

    /// Validates arena invariants (parents/children consistent, classes point
    /// at real nodes). Used by tests and the property suite.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty arena".into());
        }
        if self.nodes[0].parent.is_some() {
            return Err("root must have no parent".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let id = RNodeId(i as u32);
            if let Some(p) = n.parent {
                if p.0 as usize >= self.nodes.len() {
                    return Err(format!("node {i} has dangling parent"));
                }
                if !self.node(p).children.contains(&id) {
                    return Err(format!("node {i} missing from parent's children"));
                }
            }
            for &c in &n.children {
                if c.0 as usize >= self.nodes.len() {
                    return Err(format!("node {i} has dangling child"));
                }
                if self.node(c).parent != Some(id) {
                    return Err(format!("child {} of {} disagrees about parent", c.0, i));
                }
            }
            for lcl in &n.lcls {
                if !self.classes.get(lcl).is_some_and(|m| m.contains(&id)) {
                    return Err(format!("node {i} class {lcl} not registered"));
                }
            }
        }
        for (lcl, mems) in &self.classes {
            for m in mems {
                if m.0 as usize >= self.nodes.len() {
                    return Err(format!("class {lcl} has dangling member"));
                }
                if !self.node(*m).lcls.contains(lcl) {
                    return Err(format!("class {lcl} member {} lacks back-reference", m.0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::DocId;

    fn base(pre: u32) -> RSource {
        RSource::Base(NodeId::new(DocId(0), pre))
    }

    fn temp(gen: &mut TempIdGen) -> RSource {
        RSource::Temp { id: gen.fresh(), tag: TagId(0), content: None }
    }

    #[test]
    fn build_and_query_classes() {
        let mut t = ResultTree::with_root(base(0));
        let a = t.add_node(t.root(), base(1));
        let b = t.add_node(t.root(), base(5));
        t.assign_lcl(a, LclId(3));
        t.assign_lcl(b, LclId(3));
        t.assign_lcl(a, LclId(4));
        assert_eq!(t.members(LclId(3)), vec![a, b]);
        assert_eq!(t.singleton(LclId(4)), Some(a));
        assert_eq!(t.singleton(LclId(3)), None);
        assert!(t.members(LclId(9)).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn shadowing_hides_members_and_subtrees() {
        let mut t = ResultTree::with_root(base(0));
        let a = t.add_node(t.root(), base(1));
        let a_child = t.add_node(a, base(2));
        let b = t.add_node(t.root(), base(5));
        for n in [a, a_child, b] {
            t.assign_lcl(n, LclId(1));
        }
        t.set_shadowed(a, true);
        assert_eq!(t.members(LclId(1)), vec![b], "a and its subtree are hidden");
        assert_eq!(t.members_all(LclId(1)).len(), 3);
        t.set_shadowed(a, false);
        assert_eq!(t.members(LclId(1)).len(), 3);
    }

    #[test]
    fn graft_remaps_ids_and_classes() {
        let mut gen = TempIdGen::new();
        let mut left = ResultTree::with_root(temp(&mut gen));
        let l1 = left.add_node(left.root(), base(1));
        left.assign_lcl(l1, LclId(1));

        let mut right = ResultTree::with_root(base(10));
        let r1 = right.add_node(right.root(), base(11));
        right.assign_lcl(right.root(), LclId(2));
        right.assign_lcl(r1, LclId(3));

        let grafted_root = left.graft(&right, left.root());
        left.check_invariants().unwrap();
        assert_eq!(left.node(left.root()).children.len(), 2);
        assert_eq!(left.members(LclId(2)), vec![grafted_root]);
        assert_eq!(left.members(LclId(3)).len(), 1);
        assert_eq!(left.members(LclId(1)), vec![l1]);
    }

    #[test]
    fn without_drops_subtrees() {
        let mut t = ResultTree::with_root(base(0));
        let a = t.add_node(t.root(), base(1));
        let a1 = t.add_node(a, base(2));
        let b = t.add_node(t.root(), base(5));
        t.assign_lcl(a, LclId(1));
        t.assign_lcl(a1, LclId(2));
        t.assign_lcl(b, LclId(1));
        let pruned = t.without(&[a]);
        pruned.check_invariants().unwrap();
        assert_eq!(pruned.len(), 2);
        assert_eq!(pruned.members(LclId(1)).len(), 1);
        assert!(pruned.members(LclId(2)).is_empty());
        // Original untouched.
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn rebuild_reparents_to_nearest_kept_ancestor() {
        let mut t = ResultTree::with_root(base(0));
        let a = t.add_node(t.root(), base(1));
        let a1 = t.add_node(a, base(2));
        t.assign_lcl(a1, LclId(7));
        // Drop `a` but keep its child: child must attach to the root.
        let kept = t.rebuild(|id| id != a);
        kept.check_invariants().unwrap();
        assert_eq!(kept.len(), 2);
        let child = kept.node(kept.root()).children[0];
        assert_eq!(kept.node(child).lcls, vec![LclId(7)]);
    }

    #[test]
    fn temp_value_concatenates_children() {
        let db = Database::new();
        let mut gen = TempIdGen::new();
        let mut t = ResultTree::with_root(RSource::Temp {
            id: gen.fresh(),
            tag: TagId(0),
            content: Some("a".into()),
        });
        let c = t.add_node(
            t.root(),
            RSource::Temp { id: gen.fresh(), tag: TagId(0), content: Some("bc".into()) },
        );
        assert_eq!(t.value(&db, t.root()), "abc");
        t.set_shadowed(c, true);
        assert_eq!(t.value(&db, t.root()), "a");
        assert_eq!(t.num(&db, t.root()), None);
    }

    #[test]
    fn order_keys_put_base_before_temp() {
        let mut gen = TempIdGen::new();
        let tbase = ResultTree::with_root(base(3));
        let ttemp = ResultTree::with_root(temp(&mut gen));
        assert!(tbase.order_key() < ttemp.order_key());
    }
}
