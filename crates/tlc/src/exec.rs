//! Plan execution: set-at-a-time, bottom-up, pipelined (paper §5).

use crate::error::{Error, Result};
use crate::ops;
use crate::plan::Plan;
use crate::stats::ExecStats;
use crate::tree::{ResultTree, TempIdGen};
use std::time::{Duration, Instant};
use xmldb::Database;

/// Execution context: temporary-id generator plus counters.
#[derive(Debug, Default)]
pub struct ExecCtx {
    /// Temporary node identifier source (paper §5.1, Property 4).
    pub tmp: TempIdGen,
    /// Counters.
    pub stats: ExecStats,
    /// Optional wall-clock cut-off. The executor checks it before every
    /// operator evaluation; an exceeded deadline aborts the whole plan with
    /// [`Error::DeadlineExceeded`]. Checks sit at operator boundaries, so
    /// the granularity is one operator: a plan is never killed mid-operator,
    /// and no partially-built result escapes.
    pub deadline: Option<Instant>,
}

impl ExecCtx {
    /// Fresh context.
    pub fn new() -> Self {
        ExecCtx::default()
    }

    /// Fresh context that aborts once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        ExecCtx { deadline: Some(deadline), ..ExecCtx::default() }
    }

    fn check_deadline(&self) -> Result<()> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(Error::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// Executes a plan, returning the result sequence and execution counters.
pub fn execute(db: &Database, plan: &Plan) -> Result<(Vec<ResultTree>, ExecStats)> {
    let mut ctx = ExecCtx::new();
    let trees = run(db, plan, &mut ctx)?;
    Ok((trees, ctx.stats))
}

/// Executes a plan under a wall-clock deadline.
///
/// Returns [`Error::DeadlineExceeded`] as soon as the deadline is observed
/// past an operator boundary; a deadline already in the past fails before
/// any operator runs. This is the primitive the query service's per-request
/// timeouts are built on.
pub fn execute_with_deadline(
    db: &Database,
    plan: &Plan,
    deadline: Instant,
) -> Result<(Vec<ResultTree>, ExecStats)> {
    let mut ctx = ExecCtx::with_deadline(deadline);
    let trees = run(db, plan, &mut ctx)?;
    Ok((trees, ctx.stats))
}

/// Executes a plan and serializes the result (the typical caller surface).
pub fn execute_to_string(db: &Database, plan: &Plan) -> Result<String> {
    let (trees, _) = execute(db, plan)?;
    Ok(crate::output::serialize_results(db, &trees))
}

/// One operator's measurements from a traced execution.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// Short operator description.
    pub label: String,
    /// Nesting depth in the plan (0 = the plan root).
    pub depth: usize,
    /// Trees the operator produced.
    pub out_trees: usize,
    /// Time spent in this operator alone (children excluded).
    pub own_time: Duration,
}

/// Executes a plan recording per-operator timings and output cardinalities —
/// an "EXPLAIN ANALYZE" for TLC plans. Entries are in plan order (root
/// first, inputs following, like [`Plan::display`]).
pub fn execute_traced(
    db: &Database,
    plan: &Plan,
) -> Result<(Vec<ResultTree>, ExecStats, Vec<OpTrace>)> {
    let mut ctx = ExecCtx::new();
    let mut traces = Vec::new();
    let (trees, _) = run_traced(db, plan, &mut ctx, 0, &mut traces)?;
    Ok((trees, ctx.stats, traces))
}

/// Renders a trace table.
pub fn render_trace(traces: &[OpTrace]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>9}  {:>7}  operator
",
        "own time", "trees"
    ));
    for t in traces {
        out.push_str(&format!(
            "{:>8.3}ms  {:>7}  {}{}
",
            t.own_time.as_secs_f64() * 1e3,
            t.out_trees,
            "  ".repeat(t.depth),
            t.label
        ));
    }
    out
}

fn op_label(plan: &Plan, db: &Database) -> String {
    match plan {
        Plan::Select { apt, .. } => format!("Select[{}]", apt.display(Some(db))),
        Plan::Filter { lcl, mode, .. } => format!("Filter[{lcl} mode={mode:?}]"),
        Plan::Join { spec, .. } => {
            format!("Join[root={} right={}]", spec.root_lcl, spec.right_mspec)
        }
        Plan::Project { keep, .. } => format!("Project[{} class(es)]", keep.len()),
        Plan::DupElim { on, kind, .. } => format!("DupElim[{kind:?} on {} class(es)]", on.len()),
        Plan::Aggregate { func, over, .. } => format!("Aggregate[{}({over})]", func.name()),
        Plan::Construct { spec, .. } => format!("Construct[{} item(s)]", spec.len()),
        Plan::Sort { keys, .. } => format!("Sort[{} key(s)]", keys.len()),
        Plan::Flatten { parent, child, .. } => format!("Flatten[{parent}, {child}]"),
        Plan::Shadow { parent, child, .. } => format!("Shadow[{parent}, {child}]"),
        Plan::Illuminate { lcl, .. } => format!("Illuminate[{lcl}]"),
        Plan::GroupBy { by, collect, .. } => format!("GroupBy[by {by} collect {collect}]"),
        Plan::Materialize { lcls, .. } => format!("Materialize[{} class(es)]", lcls.len()),
        Plan::Union { inputs, .. } => format!("Union[{} branch(es)]", inputs.len()),
    }
}

/// Traced evaluation: returns (trees, total time including children).
fn run_traced(
    db: &Database,
    plan: &Plan,
    ctx: &mut ExecCtx,
    depth: usize,
    traces: &mut Vec<OpTrace>,
) -> Result<(Vec<ResultTree>, Duration)> {
    ctx.check_deadline()?;
    let slot = traces.len();
    traces.push(OpTrace {
        label: op_label(plan, db),
        depth,
        out_trees: 0,
        own_time: Duration::ZERO,
    });
    let started = Instant::now();
    let mut child_time = Duration::ZERO;
    let eval_input = |p: &Plan,
                      ctx: &mut ExecCtx,
                      traces: &mut Vec<OpTrace>,
                      child_time: &mut Duration|
     -> Result<Vec<ResultTree>> {
        let (trees, t) = run_traced(db, p, ctx, depth + 1, traces)?;
        *child_time += t;
        Ok(trees)
    };
    let trees = match plan {
        Plan::Select { input, apt } => {
            let inputs = match input {
                Some(i) => eval_input(i, ctx, traces, &mut child_time)?,
                None => Vec::new(),
            };
            ops::select(db, apt, inputs, &mut ctx.stats)?
        }
        Plan::Filter { input, lcl, pred, mode } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::filter(db, inputs, *lcl, pred, *mode, &mut ctx.stats)
        }
        Plan::Join { left, right, spec } => {
            let l = eval_input(left, ctx, traces, &mut child_time)?;
            let r = eval_input(right, ctx, traces, &mut child_time)?;
            ops::join(db, l, r, spec, &mut ctx.tmp, &mut ctx.stats)?
        }
        Plan::Project { input, keep } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::project(inputs, keep, &mut ctx.stats)
        }
        Plan::DupElim { input, on, kind } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::duplicate_elimination(db, inputs, on, *kind, &mut ctx.stats)?
        }
        Plan::Aggregate { input, func, over, new_lcl } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::aggregate(db, inputs, *func, *over, *new_lcl, &mut ctx.tmp, &mut ctx.stats)
        }
        Plan::Construct { input, spec } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::construct(db, inputs, spec, &mut ctx.tmp, &mut ctx.stats)?
        }
        Plan::Sort { input, keys } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::sort_by_keys(db, inputs, keys)
        }
        Plan::Flatten { input, parent, child } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::flatten(inputs, *parent, *child, &mut ctx.stats)?
        }
        Plan::Shadow { input, parent, child } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::shadow(inputs, *parent, *child, &mut ctx.stats)?
        }
        Plan::Illuminate { input, lcl } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::illuminate(inputs, *lcl, &mut ctx.stats)
        }
        Plan::GroupBy { input, by, collect } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::grouping_procedure(db, inputs, *by, *collect, &mut ctx.stats)?
        }
        Plan::Materialize { input, lcls } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::materialize(db, inputs, lcls, &mut ctx.stats)
        }
        Plan::Union { inputs, dedup_on } => {
            let mut branches = Vec::with_capacity(inputs.len());
            for p in inputs {
                branches.push(eval_input(p, ctx, traces, &mut child_time)?);
            }
            ops::union_all(db, branches, dedup_on, &mut ctx.stats)?
        }
    };
    let total = started.elapsed();
    traces[slot].out_trees = trees.len();
    traces[slot].own_time = total.saturating_sub(child_time);
    Ok((trees, total))
}

fn run(db: &Database, plan: &Plan, ctx: &mut ExecCtx) -> Result<Vec<ResultTree>> {
    ctx.check_deadline()?;
    match plan {
        Plan::Select { input, apt } => {
            let inputs = match input {
                Some(i) => run(db, i, ctx)?,
                None => Vec::new(),
            };
            ops::select(db, apt, inputs, &mut ctx.stats)
        }
        Plan::Filter { input, lcl, pred, mode } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::filter(db, inputs, *lcl, pred, *mode, &mut ctx.stats))
        }
        Plan::Join { left, right, spec } => {
            let l = run(db, left, ctx)?;
            let r = run(db, right, ctx)?;
            ops::join(db, l, r, spec, &mut ctx.tmp, &mut ctx.stats)
        }
        Plan::Project { input, keep } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::project(inputs, keep, &mut ctx.stats))
        }
        Plan::DupElim { input, on, kind } => {
            let inputs = run(db, input, ctx)?;
            ops::duplicate_elimination(db, inputs, on, *kind, &mut ctx.stats)
        }
        Plan::Aggregate { input, func, over, new_lcl } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::aggregate(db, inputs, *func, *over, *new_lcl, &mut ctx.tmp, &mut ctx.stats))
        }
        Plan::Construct { input, spec } => {
            let inputs = run(db, input, ctx)?;
            ops::construct(db, inputs, spec, &mut ctx.tmp, &mut ctx.stats)
        }
        Plan::Sort { input, keys } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::sort_by_keys(db, inputs, keys))
        }
        Plan::Flatten { input, parent, child } => {
            let inputs = run(db, input, ctx)?;
            ops::flatten(inputs, *parent, *child, &mut ctx.stats)
        }
        Plan::Shadow { input, parent, child } => {
            let inputs = run(db, input, ctx)?;
            ops::shadow(inputs, *parent, *child, &mut ctx.stats)
        }
        Plan::Illuminate { input, lcl } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::illuminate(inputs, *lcl, &mut ctx.stats))
        }
        Plan::GroupBy { input, by, collect } => {
            let inputs = run(db, input, ctx)?;
            ops::grouping_procedure(db, inputs, *by, *collect, &mut ctx.stats)
        }
        Plan::Materialize { input, lcls } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::materialize(db, inputs, lcls, &mut ctx.stats))
        }
        Plan::Union { inputs, dedup_on } => {
            let branches = inputs.iter().map(|p| run(db, p, ctx)).collect::<Result<Vec<_>>>()?;
            ops::union_all(db, branches, dedup_on, &mut ctx.stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical_class::LclId;
    use crate::pattern::{Apt, ContentPred, MSpec, PredValue};
    use xmldb::AxisRel;
    use xquery::CmpOp;

    #[test]
    fn execute_a_small_select_plan() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p><p><age>10</age></p></r>").unwrap();
        let p = db.interner().lookup("p").unwrap();
        let age = db.interner().lookup("age").unwrap();
        let mut apt = Apt::for_document("e.xml", LclId(1));
        let pn = apt.add(None, AxisRel::Descendant, MSpec::One, p, None, LclId(2));
        apt.add(
            Some(pn),
            AxisRel::Child,
            MSpec::One,
            age,
            Some(ContentPred { op: CmpOp::Gt, value: PredValue::Num(20.0) }),
            LclId(3),
        );
        let plan = Plan::Select { input: None, apt };
        let (trees, stats) = execute(&db, &plan).unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(stats.pattern_matches, 1);
    }

    #[test]
    fn expired_deadline_aborts_with_typed_error() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p></r>").unwrap();
        let plan = crate::compile(r#"FOR $p IN document("e.xml")//p RETURN $p/age"#, &db).unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            execute_with_deadline(&db, &plan, past).unwrap_err(),
            crate::Error::DeadlineExceeded
        );
        // A generous deadline executes normally.
        let future = Instant::now() + Duration::from_secs(60);
        let (trees, _) = execute_with_deadline(&db, &plan, future).unwrap();
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn traced_execution_matches_plain_and_reports_ops() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p><p><age>10</age></p></r>").unwrap();
        let plan = crate::compile(
            r#"FOR $p IN document("e.xml")//p WHERE $p/age > 20 RETURN $p/age"#,
            &db,
        )
        .unwrap();
        let (plain, _) = execute(&db, &plan).unwrap();
        let (traced, _, traces) = execute_traced(&db, &plan).unwrap();
        assert_eq!(
            crate::output::serialize_results(&db, &plain),
            crate::output::serialize_results(&db, &traced)
        );
        assert_eq!(traces.len(), plan.operator_count());
        assert_eq!(traces[0].depth, 0);
        assert!(traces.iter().any(|t| t.label.starts_with("Construct")));
        let table = render_trace(&traces);
        assert!(table.contains("operator"), "{table}");
    }
}
