//! Plan execution: set-at-a-time, bottom-up, pipelined (paper §5).

use crate::arena::{ExecArena, RegFrame};
use crate::error::{Error, Result};
use crate::logical_class::LclId;
use crate::ops;
use crate::ops::filter::FilterPred;
use crate::plan::Plan;
use crate::stats::ExecStats;
use crate::tree::{ResultTree, TempIdGen};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmldb::{Database, NodeId, OrdRange};

/// A pluggable store for pattern-match results, consulted by the executor
/// before running a Select/Filter chain and populated after (see
/// [`match_chain_key`] for what is cacheable and how it is keyed).
///
/// Implementations own their eviction and scoping policy; the executor
/// treats the store as a pure key → trees map. The query service scopes
/// keys by `(database, epoch)` so a snapshot hot swap can never serve a
/// stale answer.
pub trait MatchCache: Send + Sync {
    /// Returns the cached result trees for `key`, if present.
    fn get(&self, key: &str) -> Option<Arc<Vec<ResultTree>>>;
    /// Stores `trees` under `key`. Implementations may decline (e.g. when
    /// the entry exceeds a byte budget).
    fn put(&self, key: &str, trees: &[ResultTree]);
}

/// How many deadline ticks pass between `Instant::now()` calls inside long
/// pattern matches. Power of two so the check is a mask. Cooperative
/// cancellation ([`ExecCtx::cancel`]) is observed at the same period, so a
/// shard aborts with the same candidate granularity the single-threaded
/// deadline path has.
const DEADLINE_TICK_PERIOD: u32 = 1024;

/// Restriction of one pattern class's candidates to a pre-order window —
/// the executor-side half of intra-query sharding ([`mod@crate::par`]).
/// The matcher applies it to candidates of the class labelled `lcl` only;
/// every other class matches unrestricted, so matching *below* a shard's
/// anchors (and the whole right side of any join) is identical to the
/// sequential execution.
#[derive(Debug, Clone, Copy)]
pub struct AnchorRange {
    /// The class whose candidates are restricted (the shard anchor).
    pub lcl: LclId,
    /// The pre-order ordinal window.
    pub range: OrdRange,
}

/// Execution context: temporary-id generator plus counters.
#[derive(Default)]
pub struct ExecCtx {
    /// Temporary node identifier source (paper §5.1, Property 4).
    pub tmp: TempIdGen,
    /// Counters.
    pub stats: ExecStats,
    /// Optional wall-clock cut-off. The executor checks it before every
    /// operator evaluation and — via [`ExecCtx::tick`] — every
    /// `DEADLINE_TICK_PERIOD` candidate steps inside pattern matching; an
    /// exceeded deadline aborts the whole plan with
    /// [`Error::DeadlineExceeded`]. No partially-built result escapes.
    pub deadline: Option<Instant>,
    /// Optional pattern-match cache consulted for Select/Filter chains.
    pub cache: Option<Arc<dyn MatchCache>>,
    /// Optional shard anchor-range restriction (see [`mod@crate::par`]).
    pub anchor_range: Option<AnchorRange>,
    /// Optional cooperative cancellation flag shared by the sibling shards
    /// of one request: a shard that fails raises it, and every other shard
    /// observes it at deadline-tick granularity and aborts with
    /// [`Error::Cancelled`] — no orphaned shard work survives an error.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Pre-computed stage results injected by plan-node identity (see
    /// [`mod@crate::par`]): when execution reaches a plan node whose
    /// address matches a key, the stored trees are returned instead of
    /// evaluating that subplan. Keys are only meaningful for the exact
    /// plan allocation the caller executes.
    pub injected: Vec<(usize, Arc<Vec<ResultTree>>)>,
    /// Request-scoped buffer recycling for matching, the operator kernels
    /// and the VM register frame (see [`mod@crate::arena`]). The default is
    /// a private arena with the stock byte budget; the query service
    /// installs pooled arenas recycled across requests, and
    /// [`ExecArena::disabled`] reproduces the pre-arena allocation behavior
    /// byte- and counter-identically (minus the arena counters).
    pub arena: ExecArena,
    ticks: u32,
}

impl fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecCtx")
            .field("tmp", &self.tmp)
            .field("stats", &self.stats)
            .field("deadline", &self.deadline)
            .field("cache", &self.cache.is_some())
            .field("anchor_range", &self.anchor_range)
            .field("cancel", &self.cancel.is_some())
            .field("injected", &self.injected.len())
            .field("arena", &self.arena)
            .field("ticks", &self.ticks)
            .finish()
    }
}

impl ExecCtx {
    /// Fresh context.
    pub fn new() -> Self {
        ExecCtx::default()
    }

    /// Fresh context that aborts once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        ExecCtx { deadline: Some(deadline), ..ExecCtx::default() }
    }

    /// Attaches a match cache (builder style).
    pub fn with_cache(mut self, cache: Arc<dyn MatchCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Takes a recycled candidate buffer from the arena, counting a
    /// fallback allocation when none is parked.
    #[inline]
    pub fn alloc_nodes(&mut self) -> Vec<NodeId> {
        let (buf, fresh) = self.arena.take_nodes();
        self.stats.fallback_allocs += fresh as u64;
        buf
    }

    /// Returns a spent candidate buffer to the arena and tracks the
    /// request's retained-byte high-water mark.
    #[inline]
    pub fn free_nodes(&mut self, buf: Vec<NodeId>) {
        self.arena.give_nodes(buf);
        self.stats.arena_bytes = self.stats.arena_bytes.max(self.arena.high_water() as u64);
    }

    /// Takes a recycled witness-tree list (see [`ExecCtx::alloc_nodes`]).
    #[inline]
    pub fn alloc_trees(&mut self) -> Vec<ResultTree> {
        let (buf, fresh) = self.arena.take_trees();
        self.stats.fallback_allocs += fresh as u64;
        buf
    }

    /// Returns a spent witness-tree list to the arena; its contents are
    /// dropped eagerly (see [`ExecCtx::free_nodes`]).
    #[inline]
    pub fn free_trees(&mut self, buf: Vec<ResultTree>) {
        self.arena.give_trees(buf);
        self.stats.arena_bytes = self.stats.arena_bytes.max(self.arena.high_water() as u64);
    }

    /// Takes a recycled VM register frame (see [`ExecCtx::alloc_nodes`]).
    #[inline]
    pub fn alloc_frame(&mut self) -> RegFrame {
        let (buf, fresh) = self.arena.take_frame();
        self.stats.fallback_allocs += fresh as u64;
        buf
    }

    /// Returns a spent register frame to the arena (see
    /// [`ExecCtx::free_nodes`]).
    #[inline]
    pub fn free_frame(&mut self, buf: RegFrame) {
        self.arena.give_frame(buf);
        self.stats.arena_bytes = self.stats.arena_bytes.max(self.arena.high_water() as u64);
    }

    /// Deadline and cancellation check at an operator boundary. Free when
    /// neither is set — `Instant::now()` is only evaluated on the `Some`
    /// path, and the cancel flag is one relaxed load.
    #[inline]
    pub(crate) fn check_deadline(&self) -> Result<()> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(Error::Cancelled);
            }
        }
        match self.deadline {
            None => Ok(()),
            Some(d) => {
                if Instant::now() >= d {
                    Err(Error::DeadlineExceeded)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Fine-grained deadline/cancellation check for long-running matches: a
    /// no-op when neither is set, and at most one `Instant::now()` per
    /// `DEADLINE_TICK_PERIOD` calls otherwise. Pattern matching calls this
    /// per candidate step so a batched group — or a shard whose sibling
    /// already failed — can abort mid-match instead of only at operator
    /// boundaries.
    #[inline]
    pub fn tick(&mut self) -> Result<()> {
        if self.deadline.is_none() && self.cancel.is_none() {
            return Ok(());
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(DEADLINE_TICK_PERIOD) {
            self.check_deadline()
        } else {
            Ok(())
        }
    }
}

/// Executes a plan, returning the result sequence and execution counters.
pub fn execute(db: &Database, plan: &Plan) -> Result<(Vec<ResultTree>, ExecStats)> {
    let mut ctx = ExecCtx::new();
    let trees = run(db, plan, &mut ctx)?;
    Ok((trees, ctx.stats))
}

/// Executes a plan under a wall-clock deadline.
///
/// Returns [`Error::DeadlineExceeded`] as soon as the deadline is observed
/// past an operator boundary; a deadline already in the past fails before
/// any operator runs. This is the primitive the query service's per-request
/// timeouts are built on.
pub fn execute_with_deadline(
    db: &Database,
    plan: &Plan,
    deadline: Instant,
) -> Result<(Vec<ResultTree>, ExecStats)> {
    let mut ctx = ExecCtx::with_deadline(deadline);
    let trees = run(db, plan, &mut ctx)?;
    Ok((trees, ctx.stats))
}

/// Executes a plan under a caller-supplied context — the full-control entry
/// point: deadline, match cache and counters all live on `ctx`. The other
/// `execute*` functions are conveniences over this.
pub fn execute_with_ctx(db: &Database, plan: &Plan, ctx: &mut ExecCtx) -> Result<Vec<ResultTree>> {
    run(db, plan, ctx)
}

/// Executes a plan and serializes the result (the typical caller surface).
pub fn execute_to_string(db: &Database, plan: &Plan) -> Result<String> {
    let (trees, _) = execute(db, plan)?;
    Ok(crate::output::serialize_results(db, &trees))
}

/// The cache key for a plan whose result the match cache may hold, or
/// `None` when the plan is not cacheable.
///
/// Cacheable plans are the Select/Filter *chains* the translator emits for
/// pattern matching — a document- or class-rooted `Select`, `Filter`,
/// `Project` or `DupElim` whose (optional) input is itself a cacheable
/// chain. Such a chain is a pure function of the database snapshot and its
/// own shape: none of these operators mint temporary nodes, so their
/// output embeds only base node ids and class labels, both of which the
/// key covers (APT fingerprints include labels). Any other operator in the
/// chain (Join, Aggregate, Construct, …) creates fresh temporary ids per
/// execution, so those plans are never cached.
///
/// The key is a canonical form, not a hash: distinct chains cannot collide.
/// Callers scope it further (the service prepends `(db, epoch)`).
pub fn match_chain_key(plan: &Plan) -> Option<String> {
    match plan {
        Plan::Select { input, apt } => {
            let fp = apt.fingerprint();
            match input {
                None => Some(format!("S{fp}")),
                Some(i) => {
                    let prefix = match_chain_key(i)?;
                    Some(format!("{prefix}\u{2}S{fp}"))
                }
            }
        }
        Plan::Filter { input, lcl, pred, mode } => {
            let prefix = match_chain_key(input)?;
            let pred = match pred {
                FilterPred::Content(p) => {
                    // Literals are length/bit-prefixed so keys stay
                    // self-delimiting (same rules as APT fingerprints).
                    match &p.value {
                        crate::pattern::PredValue::Num(n) => {
                            format!("{:?}n{:016x}", p.op, n.to_bits())
                        }
                        crate::pattern::PredValue::Str(s) => {
                            format!("{:?}s{}:{s}", p.op, s.len())
                        }
                    }
                }
                FilterPred::CmpLcl { op, other } => format!("{op:?}c{}", other.0),
            };
            Some(format!("{prefix}\u{2}Fc{};{mode:?};{pred}", lcl.0))
        }
        Plan::Project { input, keep } => {
            let prefix = match_chain_key(input)?;
            let keep: Vec<String> = keep.iter().map(|l| l.0.to_string()).collect();
            Some(format!("{prefix}\u{2}Pc{}", keep.join(",")))
        }
        Plan::DupElim { input, on, kind } => {
            let prefix = match_chain_key(input)?;
            let on: Vec<String> = on.iter().map(|l| l.0.to_string()).collect();
            Some(format!("{prefix}\u{2}D{kind:?}c{}", on.join(",")))
        }
        _ => None,
    }
}

/// Every match-cache key an execution of `plan` can probe or populate: the
/// [`match_chain_key`] of each cacheable node anywhere in the plan tree
/// (the executor probes at every level of a chain, so inner chain keys are
/// live entries too). Sorted and deduplicated.
///
/// This is the enumeration the query service uses to *carry* match-cache
/// entries across an update epoch: for a cached plan whose
/// [`crate::Footprint`] is provably disjoint from a mutation, these are
/// exactly the keys whose entries remain valid.
pub fn match_chain_keys(plan: &Plan) -> Vec<String> {
    let mut keys = Vec::new();
    collect_chain_keys(plan, &mut keys);
    keys.sort();
    keys.dedup();
    keys
}

fn collect_chain_keys(plan: &Plan, out: &mut Vec<String>) {
    if let Some(key) = match_chain_key(plan) {
        out.push(key);
    }
    match plan {
        Plan::Select { input, .. } => {
            if let Some(input) = input {
                collect_chain_keys(input, out);
            }
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => collect_chain_keys(input, out),
        Plan::Join { left, right, .. } => {
            collect_chain_keys(left, out);
            collect_chain_keys(right, out);
        }
        Plan::Union { inputs, .. } => {
            for input in inputs {
                collect_chain_keys(input, out);
            }
        }
    }
}

/// Every match-cache key an execution of `plan` can touch, paired with the
/// precise [`crate::Footprint`] of exactly the chain that entry answers
/// for. A chain's footprint is a subset of the whole plan's, so the query
/// service can carry a *chain* entry across an update epoch even when the
/// enclosing plan as a whole reads mutated data. Sorted and deduplicated
/// by key.
pub fn match_chain_footprints(plan: &Plan) -> Vec<(String, crate::analyze::Footprint)> {
    let mut out = Vec::new();
    collect_chain_footprints(plan, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

fn collect_chain_footprints(plan: &Plan, out: &mut Vec<(String, crate::analyze::Footprint)>) {
    if let Some(key) = match_chain_key(plan) {
        out.push((key, crate::analyze::plan_footprint(plan)));
    }
    for input in plan.inputs() {
        collect_chain_footprints(input, out);
    }
}

/// Checks an observed result set against the plan's statically inferred
/// [`crate::PlanType`] — the runtime half of the analyzer soundness oracle.
///
/// Verified claims:
/// - a class inferred [`crate::Card::One`] has exactly one visible member
///   in every output tree, and [`crate::Card::Opt`] at most one;
/// - when the analyzer claims [`crate::analyze::Order::Document`], result
///   roots are non-decreasing in document order.
///
/// Plans containing `Construct` or `GroupBy` are skipped entirely:
/// Construct may copy a member into several constructed elements and
/// GroupBy grafts members across trees, so per-tree member counts
/// legitimately diverge from the per-class cards. Plans containing `Union`
/// skip only the order check (branch concatenation interleaves documents).
/// An unanalyzable plan trivially conforms. Debug builds run this check on
/// every executed (sub)plan, so the whole test suite doubles as a
/// differential test of the analyzer.
pub fn check_conformance(plan: &Plan, trees: &[ResultTree]) -> std::result::Result<(), String> {
    let t = match crate::analyze::analyze(plan) {
        Ok(t) => t,
        Err(_) => return Ok(()),
    };
    if contains(plan, &mut |p| matches!(p, Plan::Construct { .. } | Plan::GroupBy { .. })) {
        return Ok(());
    }
    for (i, tree) in trees.iter().enumerate() {
        for (&lcl, &card) in &t.classes {
            let n = tree.members(lcl).len();
            let ok = match card {
                crate::analyze::Card::One => n == 1,
                crate::analyze::Card::Opt => n <= 1,
                crate::analyze::Card::Many => true,
            };
            if !ok {
                return Err(format!(
                    "tree {i}: class {lcl} has {n} member(s) but the analyzer claims {card:?}"
                ));
            }
        }
    }
    if t.order == crate::analyze::Order::Document
        && !contains(plan, &mut |p| matches!(p, Plan::Union { .. }))
    {
        let mut prev = None;
        for (i, tree) in trees.iter().enumerate() {
            let key = tree.order_key();
            if let Some(p) = prev {
                if key < p {
                    return Err(format!(
                        "tree {i} breaks the claimed document order (root {key:?} < {p:?})"
                    ));
                }
            }
            prev = Some(key);
        }
    }
    Ok(())
}

fn contains(plan: &Plan, pred: &mut impl FnMut(&Plan) -> bool) -> bool {
    pred(plan) || plan.inputs().into_iter().any(|i| contains(i, pred))
}

/// One operator's measurements from a traced execution.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// Short operator description.
    pub label: String,
    /// Nesting depth in the plan (0 = the plan root).
    pub depth: usize,
    /// Trees the operator produced.
    pub out_trees: usize,
    /// Time spent in this operator alone (children excluded).
    pub own_time: Duration,
}

/// Executes a plan recording per-operator timings and output cardinalities —
/// an "EXPLAIN ANALYZE" for TLC plans. Entries are in plan order (root
/// first, inputs following, like [`Plan::display`]).
pub fn execute_traced(
    db: &Database,
    plan: &Plan,
) -> Result<(Vec<ResultTree>, ExecStats, Vec<OpTrace>)> {
    let mut ctx = ExecCtx::new();
    let mut traces = Vec::new();
    let (trees, _) = run_traced(db, plan, &mut ctx, 0, &mut traces)?;
    Ok((trees, ctx.stats, traces))
}

/// Renders a trace table.
pub fn render_trace(traces: &[OpTrace]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>9}  {:>7}  operator
",
        "own time", "trees"
    ));
    for t in traces {
        out.push_str(&format!(
            "{:>8.3}ms  {:>7}  {}{}
",
            t.own_time.as_secs_f64() * 1e3,
            t.out_trees,
            "  ".repeat(t.depth),
            t.label
        ));
    }
    out
}

fn op_label(plan: &Plan, db: &Database) -> String {
    match plan {
        Plan::Select { apt, .. } => format!("Select[{}]", apt.display(Some(db))),
        Plan::Filter { lcl, mode, .. } => format!("Filter[{lcl} mode={mode:?}]"),
        Plan::Join { spec, .. } => {
            format!("Join[root={} right={}]", spec.root_lcl, spec.right_mspec)
        }
        Plan::Project { keep, .. } => format!("Project[{} class(es)]", keep.len()),
        Plan::DupElim { on, kind, .. } => format!("DupElim[{kind:?} on {} class(es)]", on.len()),
        Plan::Aggregate { func, over, .. } => format!("Aggregate[{}({over})]", func.name()),
        Plan::Construct { spec, .. } => format!("Construct[{} item(s)]", spec.len()),
        Plan::Sort { keys, .. } => format!("Sort[{} key(s)]", keys.len()),
        Plan::Flatten { parent, child, .. } => format!("Flatten[{parent}, {child}]"),
        Plan::Shadow { parent, child, .. } => format!("Shadow[{parent}, {child}]"),
        Plan::Illuminate { lcl, .. } => format!("Illuminate[{lcl}]"),
        Plan::GroupBy { by, collect, .. } => format!("GroupBy[by {by} collect {collect}]"),
        Plan::Materialize { lcls, .. } => format!("Materialize[{} class(es)]", lcls.len()),
        Plan::Union { inputs, .. } => format!("Union[{} branch(es)]", inputs.len()),
    }
}

/// Traced evaluation: returns (trees, total time including children).
fn run_traced(
    db: &Database,
    plan: &Plan,
    ctx: &mut ExecCtx,
    depth: usize,
    traces: &mut Vec<OpTrace>,
) -> Result<(Vec<ResultTree>, Duration)> {
    ctx.check_deadline()?;
    let slot = traces.len();
    traces.push(OpTrace {
        label: op_label(plan, db),
        depth,
        out_trees: 0,
        own_time: Duration::ZERO,
    });
    let started = Instant::now();
    let mut child_time = Duration::ZERO;
    let eval_input = |p: &Plan,
                      ctx: &mut ExecCtx,
                      traces: &mut Vec<OpTrace>,
                      child_time: &mut Duration|
     -> Result<Vec<ResultTree>> {
        let (trees, t) = run_traced(db, p, ctx, depth + 1, traces)?;
        *child_time += t;
        Ok(trees)
    };
    let trees = match plan {
        Plan::Select { input, apt } => {
            let inputs = match input {
                Some(i) => eval_input(i, ctx, traces, &mut child_time)?,
                None => Vec::new(),
            };
            ops::select(db, apt, inputs, ctx)?
        }
        Plan::Filter { input, lcl, pred, mode } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::filter(db, inputs, *lcl, pred, *mode, &mut ctx.stats)
        }
        Plan::Join { left, right, spec } => {
            let l = eval_input(left, ctx, traces, &mut child_time)?;
            let r = eval_input(right, ctx, traces, &mut child_time)?;
            ops::join(db, l, r, spec, &mut ctx.tmp, &mut ctx.stats)?
        }
        Plan::Project { input, keep } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::project(inputs, keep, &mut ctx.stats)
        }
        Plan::DupElim { input, on, kind } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::duplicate_elimination(db, inputs, on, *kind, &mut ctx.stats)?
        }
        Plan::Aggregate { input, func, over, new_lcl } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::aggregate(db, inputs, *func, *over, *new_lcl, &mut ctx.tmp, &mut ctx.stats)
        }
        Plan::Construct { input, spec } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::construct(db, inputs, spec, &mut ctx.tmp, &mut ctx.stats)?
        }
        Plan::Sort { input, keys } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::sort_by_keys(db, inputs, keys)
        }
        Plan::Flatten { input, parent, child } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::flatten(inputs, *parent, *child, &mut ctx.stats)?
        }
        Plan::Shadow { input, parent, child } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::shadow(inputs, *parent, *child, &mut ctx.stats)?
        }
        Plan::Illuminate { input, lcl } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::illuminate(inputs, *lcl, &mut ctx.stats)
        }
        Plan::GroupBy { input, by, collect } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::grouping_procedure(db, inputs, *by, *collect, &mut ctx.stats)?
        }
        Plan::Materialize { input, lcls } => {
            let inputs = eval_input(input, ctx, traces, &mut child_time)?;
            ops::materialize(db, inputs, lcls, &mut ctx.stats)
        }
        Plan::Union { inputs, dedup_on } => {
            let mut branches = Vec::with_capacity(inputs.len());
            for p in inputs {
                branches.push(eval_input(p, ctx, traces, &mut child_time)?);
            }
            ops::union_all(db, branches, dedup_on, &mut ctx.stats)?
        }
    };
    let total = started.elapsed();
    traces[slot].out_trees = trees.len();
    traces[slot].own_time = total.saturating_sub(child_time);
    Ok((trees, total))
}

fn run(db: &Database, plan: &Plan, ctx: &mut ExecCtx) -> Result<Vec<ResultTree>> {
    ctx.check_deadline()?;
    // Stage injection (intra-query sharding): a final-wave shard receives
    // the pre-computed result of each join's right subplan and returns it
    // by plan-node identity instead of re-evaluating the subtree.
    if !ctx.injected.is_empty() {
        let key = std::ptr::from_ref(plan) as usize;
        if let Some((_, trees)) = ctx.injected.iter().find(|(k, _)| *k == key) {
            return Ok(trees.as_ref().clone());
        }
    }
    // Pattern-match chains (Select/Filter and the Project/DupElim glue
    // between them) are pure functions of the database snapshot, so a
    // match cache (when attached) can answer them without matching. The
    // key covers the whole chain below this operator; on a miss the chain
    // runs normally and each cacheable level populates its own entry.
    if let Some(cache) = ctx.cache.clone() {
        if let Some(key) = match_chain_key(plan) {
            if let Some(hit) = cache.get(&key) {
                ctx.stats.match_cache_hits += 1;
                // Each tree must be cloned out of the shared entry, but
                // the list holding them comes from the arena — on warm
                // caches this is the request's dominant allocation site.
                let mut out = ctx.alloc_trees();
                out.extend(hit.iter().cloned());
                return Ok(out);
            }
            let trees = run_checked(db, plan, ctx)?;
            ctx.stats.match_cache_misses += 1;
            cache.put(&key, &trees);
            return Ok(trees);
        }
    }
    run_checked(db, plan, ctx)
}

/// Runs one operator and, in debug builds, checks the observed output
/// against the analyzer's claims ([`check_conformance`]) — every executed
/// subplan in the test suite exercises the soundness oracle. Cache hits are
/// not re-checked: the entry conformed when it was produced.
fn run_checked(db: &Database, plan: &Plan, ctx: &mut ExecCtx) -> Result<Vec<ResultTree>> {
    let trees = run_op(db, plan, ctx)?;
    #[cfg(debug_assertions)]
    if let Err(msg) = check_conformance(plan, &trees) {
        panic!("analyzer conformance violation: {msg}\nplan:\n{}", plan.display(Some(db)));
    }
    Ok(trees)
}

fn run_op(db: &Database, plan: &Plan, ctx: &mut ExecCtx) -> Result<Vec<ResultTree>> {
    match plan {
        Plan::Select { input, apt } => {
            let inputs = match input {
                Some(i) => run(db, i, ctx)?,
                None => Vec::new(),
            };
            ops::select(db, apt, inputs, ctx)
        }
        Plan::Filter { input, lcl, pred, mode } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::filter(db, inputs, *lcl, pred, *mode, &mut ctx.stats))
        }
        Plan::Join { left, right, spec } => {
            let l = run(db, left, ctx)?;
            let r = run(db, right, ctx)?;
            ops::join(db, l, r, spec, &mut ctx.tmp, &mut ctx.stats)
        }
        Plan::Project { input, keep } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::project(inputs, keep, &mut ctx.stats))
        }
        Plan::DupElim { input, on, kind } => {
            let inputs = run(db, input, ctx)?;
            ops::duplicate_elimination(db, inputs, on, *kind, &mut ctx.stats)
        }
        Plan::Aggregate { input, func, over, new_lcl } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::aggregate(db, inputs, *func, *over, *new_lcl, &mut ctx.tmp, &mut ctx.stats))
        }
        Plan::Construct { input, spec } => {
            let inputs = run(db, input, ctx)?;
            ops::construct(db, inputs, spec, &mut ctx.tmp, &mut ctx.stats)
        }
        Plan::Sort { input, keys } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::sort_by_keys(db, inputs, keys))
        }
        Plan::Flatten { input, parent, child } => {
            let inputs = run(db, input, ctx)?;
            ops::flatten(inputs, *parent, *child, &mut ctx.stats)
        }
        Plan::Shadow { input, parent, child } => {
            let inputs = run(db, input, ctx)?;
            ops::shadow(inputs, *parent, *child, &mut ctx.stats)
        }
        Plan::Illuminate { input, lcl } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::illuminate(inputs, *lcl, &mut ctx.stats))
        }
        Plan::GroupBy { input, by, collect } => {
            let inputs = run(db, input, ctx)?;
            ops::grouping_procedure(db, inputs, *by, *collect, &mut ctx.stats)
        }
        Plan::Materialize { input, lcls } => {
            let inputs = run(db, input, ctx)?;
            Ok(ops::materialize(db, inputs, lcls, &mut ctx.stats))
        }
        Plan::Union { inputs, dedup_on } => {
            let branches = inputs.iter().map(|p| run(db, p, ctx)).collect::<Result<Vec<_>>>()?;
            ops::union_all(db, branches, dedup_on, &mut ctx.stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical_class::LclId;
    use crate::pattern::{Apt, ContentPred, MSpec, PredValue};
    use xmldb::AxisRel;
    use xquery::CmpOp;

    #[test]
    fn execute_a_small_select_plan() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p><p><age>10</age></p></r>").unwrap();
        let p = db.interner().lookup("p").unwrap();
        let age = db.interner().lookup("age").unwrap();
        let mut apt = Apt::for_document("e.xml", LclId(1));
        let pn = apt.add(None, AxisRel::Descendant, MSpec::One, p, None, LclId(2));
        apt.add(
            Some(pn),
            AxisRel::Child,
            MSpec::One,
            age,
            Some(ContentPred { op: CmpOp::Gt, value: PredValue::Num(20.0) }),
            LclId(3),
        );
        let plan = Plan::Select { input: None, apt };
        let (trees, stats) = execute(&db, &plan).unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(stats.pattern_matches, 1);
    }

    #[test]
    fn expired_deadline_aborts_with_typed_error() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p></r>").unwrap();
        let plan = crate::compile(r#"FOR $p IN document("e.xml")//p RETURN $p/age"#, &db).unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            execute_with_deadline(&db, &plan, past).unwrap_err(),
            crate::Error::DeadlineExceeded
        );
        // A generous deadline executes normally.
        let future = Instant::now() + Duration::from_secs(60);
        let (trees, _) = execute_with_deadline(&db, &plan, future).unwrap();
        assert_eq!(trees.len(), 1);
    }

    /// Toy in-memory MatchCache for tests.
    #[derive(Default)]
    struct MapCache {
        map: std::sync::Mutex<std::collections::HashMap<String, Arc<Vec<ResultTree>>>>,
    }

    impl MatchCache for MapCache {
        fn get(&self, key: &str) -> Option<Arc<Vec<ResultTree>>> {
            self.map.lock().unwrap().get(key).cloned()
        }
        fn put(&self, key: &str, trees: &[ResultTree]) {
            self.map.lock().unwrap().insert(key.to_string(), Arc::new(trees.to_vec()));
        }
    }

    #[test]
    fn match_cache_serves_select_filter_chains_byte_identically() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p><p><age>10</age></p></r>").unwrap();
        let plan = crate::compile(
            r#"FOR $p IN document("e.xml")//p WHERE $p/age > 20 RETURN $p/age"#,
            &db,
        )
        .unwrap();
        let (fresh, _) = execute(&db, &plan).unwrap();
        let expected = crate::output::serialize_results(&db, &fresh);

        let cache = Arc::new(MapCache::default());
        let mut cold = ExecCtx::new().with_cache(cache.clone());
        let got = execute_with_ctx(&db, &plan, &mut cold).unwrap();
        assert_eq!(crate::output::serialize_results(&db, &got), expected);
        assert_eq!(cold.stats.match_cache_hits, 0);
        assert!(cold.stats.match_cache_misses > 0, "cacheable chain must probe");
        assert!(cold.stats.pattern_matches > 0);

        let mut warm = ExecCtx::new().with_cache(cache);
        let got = execute_with_ctx(&db, &plan, &mut warm).unwrap();
        assert_eq!(crate::output::serialize_results(&db, &got), expected);
        assert!(warm.stats.match_cache_hits > 0, "second run must hit");
        assert_eq!(
            warm.stats.pattern_matches, 0,
            "a hit at the top of the chain skips all matching"
        );
        assert_eq!(warm.stats.candidate_fetches, 0, "no index fetches on a full hit");
    }

    #[test]
    fn match_chain_key_covers_chains_and_rejects_other_operators() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p></r>").unwrap();
        let chain =
            crate::compile(r#"FOR $p IN document("e.xml")//p WHERE $p/age > 20 RETURN $p"#, &db)
                .unwrap();
        // The full plan ends in Construct (not cacheable) but its Select/
        // Filter spine below must key.
        assert!(match_chain_key(&chain).is_none());
        let mut spine = &chain;
        while let Plan::Construct { input, .. } | Plan::Sort { input, .. } = spine {
            spine = input;
        }
        assert!(
            match_chain_key(spine).is_some(),
            "Select/Filter spine should be cacheable: {}",
            spine.display(Some(&db))
        );
        // Two compiles of the same text share a key (stable fingerprints).
        let again =
            crate::compile(r#"FOR $p IN document("e.xml")//p WHERE $p/age > 20 RETURN $p"#, &db)
                .unwrap();
        let mut spine2 = &again;
        while let Plan::Construct { input, .. } | Plan::Sort { input, .. } = spine2 {
            spine2 = input;
        }
        assert_eq!(match_chain_key(spine), match_chain_key(spine2));
    }

    #[test]
    fn deadline_aborts_mid_match_through_ticks() {
        let mut db = Database::new();
        // Enough nodes that one Select performs > DEADLINE_TICK_PERIOD
        // candidate steps.
        let mut xml = String::from("<r>");
        for i in 0..3000 {
            xml.push_str(&format!("<p><age>{}</age></p>", i % 90));
        }
        xml.push_str("</r>");
        db.load_xml("big.xml", &xml).unwrap();
        let p = db.interner().lookup("p").unwrap();
        let mut apt = Apt::for_document("big.xml", LclId(1));
        apt.add(None, AxisRel::Descendant, MSpec::One, p, None, LclId(2));
        // Calling the operator directly skips the operator-boundary check,
        // so only the per-candidate ticks can observe the expired deadline.
        let mut ctx = ExecCtx::with_deadline(Instant::now() - Duration::from_millis(1));
        let got = ops::select(&db, &apt, Vec::new(), &mut ctx);
        assert_eq!(got.unwrap_err(), Error::DeadlineExceeded);
        // Without a deadline the same match ticks for free and completes.
        let mut free = ExecCtx::new();
        assert_eq!(ops::select(&db, &apt, Vec::new(), &mut free).unwrap().len(), 3000);
    }

    #[test]
    fn traced_execution_matches_plain_and_reports_ops() {
        let mut db = Database::new();
        db.load_xml("e.xml", "<r><p><age>30</age></p><p><age>10</age></p></r>").unwrap();
        let plan = crate::compile(
            r#"FOR $p IN document("e.xml")//p WHERE $p/age > 20 RETURN $p/age"#,
            &db,
        )
        .unwrap();
        let (plain, _) = execute(&db, &plan).unwrap();
        let (traced, _, traces) = execute_traced(&db, &plan).unwrap();
        assert_eq!(
            crate::output::serialize_results(&db, &plain),
            crate::output::serialize_results(&db, &traced)
        );
        assert_eq!(traces.len(), plan.operator_count());
        assert_eq!(traces[0].depth, 0);
        assert!(traces.iter().any(|t| t.label.starts_with("Construct")));
        let table = render_trace(&traces);
        assert!(table.contains("operator"), "{table}");
    }
}
