//! Serialization of result trees to XML text.
//!
//! Base nodes expand to their full stored subtree (the paper's RETURN
//! semantics: "the complete subtree rooted at each qualifying node").
//! Temporary nodes serialize from their tag/content/children; shadowed nodes
//! are invisible (§4.3). A tree rooted at a document root (a raw witness
//! tree) falls back to serializing its explicit children, which keeps debug
//! output usable.

use crate::tree::{RNodeId, RSource, ResultTree};
use xmldb::serialize::{escape_attr, escape_text, serialize_subtree};
use xmldb::{Database, NodeKind};

/// Serializes one result tree.
pub fn serialize_tree(db: &Database, tree: &ResultTree) -> String {
    let mut out = String::new();
    write_node(db, tree, tree.root(), &mut out);
    out
}

/// Serializes a whole result sequence, one tree per line.
pub fn serialize_results(db: &Database, trees: &[ResultTree]) -> String {
    let mut out = String::new();
    for (i, t) in trees.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&serialize_tree(db, t));
    }
    out
}

fn write_node(db: &Database, tree: &ResultTree, id: RNodeId, out: &mut String) {
    if tree.node(id).shadowed {
        return;
    }
    match &tree.node(id).source {
        RSource::Base(n) => {
            if db.node(*n).kind() == NodeKind::DocRoot {
                for &c in &tree.node(id).children {
                    write_node(db, tree, c, out);
                }
            } else {
                out.push_str(&serialize_subtree(db, *n));
            }
        }
        RSource::Temp { tag, content, .. } => {
            let name = db.interner().name(*tag);
            if &*name == "#text" {
                escape_text(content.as_deref().unwrap_or(""), out);
                return;
            }
            if let Some(attr_name) = name.strip_prefix('@') {
                out.push_str(attr_name);
                out.push_str("=\"");
                escape_attr(content.as_deref().unwrap_or(""), out);
                out.push('"');
                return;
            }
            // Element: attributes first, then content and children.
            out.push('<');
            out.push_str(&name);
            let mut content_children = Vec::new();
            for &c in &tree.node(id).children {
                if tree.node(c).shadowed {
                    continue;
                }
                if let RSource::Temp { tag: ct, content: cc, .. } = &tree.node(c).source {
                    let cname = db.interner().name(*ct);
                    if let Some(an) = cname.strip_prefix('@') {
                        out.push(' ');
                        out.push_str(an);
                        out.push_str("=\"");
                        escape_attr(cc.as_deref().unwrap_or(""), out);
                        out.push('"');
                        continue;
                    }
                    // Empty text temporaries (e.g. a text() of a missing
                    // path) contribute nothing; skipping them keeps
                    // `<e/>` vs `<e></e>` canonical.
                    if &*cname == "#text" && cc.as_deref().unwrap_or("").is_empty() {
                        continue;
                    }
                }
                content_children.push(c);
            }
            if content_children.is_empty() && content.is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            if let Some(c) = content {
                escape_text(c, out);
            }
            for c in content_children {
                write_node(db, tree, c, out);
            }
            out.push_str("</");
            out.push_str(&name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical_class::LclId;
    use crate::tree::TempIdGen;

    #[test]
    fn base_nodes_expand_to_full_subtrees() {
        let mut db = Database::new();
        db.load_xml("o.xml", "<r><b d=\"1\"><inc>7</inc></b></r>").unwrap();
        let b = db.nodes_with_tag("b")[0];
        let t = ResultTree::with_root(RSource::Base(b));
        assert_eq!(serialize_tree(&db, &t), "<b d=\"1\"><inc>7</inc></b>");
    }

    #[test]
    fn temp_elements_with_attrs_and_text() {
        let mut db = Database::new();
        db.load_xml("o.xml", "<r/>").unwrap();
        let mut gen = TempIdGen::new();
        let person = db.interner().intern("person");
        let at_name = db.interner().intern("@name");
        let text = db.interner().text_tag();
        let mut t =
            ResultTree::with_root(RSource::Temp { id: gen.fresh(), tag: person, content: None });
        let root = t.root();
        t.add_node(
            root,
            RSource::Temp { id: gen.fresh(), tag: at_name, content: Some("Ann & Bo".into()) },
        );
        t.add_node(root, RSource::Temp { id: gen.fresh(), tag: text, content: Some("x<y".into()) });
        assert_eq!(serialize_tree(&db, &t), "<person name=\"Ann &amp; Bo\">x&lt;y</person>");
    }

    #[test]
    fn shadowed_children_are_invisible() {
        let mut db = Database::new();
        db.load_xml("o.xml", "<r><a/><b/></r>").unwrap();
        let mut gen = TempIdGen::new();
        let wrap = db.interner().intern("wrap");
        let mut t =
            ResultTree::with_root(RSource::Temp { id: gen.fresh(), tag: wrap, content: None });
        let root = t.root();
        let a = t.add_node(root, RSource::Base(db.nodes_with_tag("a")[0]));
        t.add_node(root, RSource::Base(db.nodes_with_tag("b")[0]));
        t.assign_lcl(a, LclId(1));
        t.set_shadowed(a, true);
        assert_eq!(serialize_tree(&db, &t), "<wrap><b/></wrap>");
    }

    #[test]
    fn doc_root_serializes_children_only() {
        let mut db = Database::new();
        let d = db.load_xml("o.xml", "<r><a/></r>").unwrap();
        let mut t = ResultTree::with_root(RSource::Base(db.root(d)));
        let root = t.root();
        t.add_node(root, RSource::Base(db.nodes_with_tag("a")[0]));
        assert_eq!(serialize_tree(&db, &t), "<a/>");
    }

    #[test]
    fn result_sequence_is_newline_separated() {
        let mut db = Database::new();
        db.load_xml("o.xml", "<r><a/><b/></r>").unwrap();
        let ts = vec![
            ResultTree::with_root(RSource::Base(db.nodes_with_tag("a")[0])),
            ResultTree::with_root(RSource::Base(db.nodes_with_tag("b")[0])),
        ];
        assert_eq!(serialize_results(&db, &ts), "<a/>\n<b/>");
    }
}
