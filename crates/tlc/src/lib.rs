#![warn(missing_docs)]

//! # tlc — the Tree Logical Class algebra
//!
//! From-scratch implementation of *"Tree Logical Classes for Efficient
//! Evaluation of XQuery"* (Paparizos, Wu, Lakshmanan, Jagadish — SIGMOD
//! 2004), the algebra used by the TIMBER native XML database.
//!
//! The crate provides, module by module:
//!
//! * [`pattern`] — **Annotated Pattern Trees** with `-`/`?`/`+`/`*` matching
//!   specifications (Definitions 1–3).
//! * [`logical_class`], [`tree`] — **logical classes** and class-labelled
//!   heterogeneous result trees (Definition 4, §2.2).
//! * [`matching`] — the APT matcher, built on the structural-join access
//!   pattern of §5.2.
//! * [`physical`] — structural joins, **nest-structural-joins**
//!   (Definition 8), and the **sort-merge-sort** value join of §5.1.
//! * [`ops`] — the algebra's operators: Select, Filter, Join, Project,
//!   Duplicate-Elimination, Aggregate, Construct, Sort, Union, and the
//!   redundancy-eliminating **Flatten / Shadow / Illuminate** (§4).
//! * [`plan`], [`exec`] — logical plans and the set-at-a-time executor.
//! * [`arena`] — request-scoped execution memory: recycled buffer pools
//!   with bump-style reset, threaded through [`exec::ExecCtx`].
//! * [`mod@translate`] — the **XQuery → TLC** translation algorithm (Figure 6),
//!   covering the Figure 5 fragment including nested FLWOR.
//! * [`rewrite`] — the Flatten and Shadow/Illuminate rewrite rules (§4.2,
//!   §4.3).
//! * [`mod@analyze`] — the multi-pass static analysis framework:
//!   type-checks every operator's class references (the dataflow verifier
//!   and differential oracle for the rewrite passes), infers per-operator
//!   read-effect footprints for cache carry-over, and proves distinctness
//!   facts that justify dead-code pruning.
//! * [`mod@lint`] — structured diagnostics over verified plans (statically
//!   empty selects, contradictory predicates, redundant DupElims, dead
//!   Project columns), surfaced through the service's `.explain` command.
//! * [`generator`] — a seeded random generator of *valid* plans, shared by
//!   the negative plan-mutation tests and the `experiments lintcheck`
//!   soundness oracle.
//! * [`optimizer`] — a cost model over index statistics that decides when
//!   the rewrites pay off (the decision the paper defers to an optimizer).
//! * [`vm`] — the register-IR compiler and bytecode evaluator: verified
//!   plans lower once into a flat, verified [`vm::Program`] (fused
//!   Select/Filter spines, compiled match-cache probes) that replays the
//!   tree walker byte-identically without per-operator dispatch.
//! * [`output`] — result serialization.
//!
//! ## Quick start
//!
//! ```
//! let mut db = xmldb::Database::new();
//! db.load_xml("auction.xml",
//!     r#"<site><people>
//!          <person id="person0"><name>Ann</name><age>30</age></person>
//!          <person id="person1"><name>Bo</name></person>
//!        </people></site>"#).unwrap();
//!
//! let plan = tlc::compile(
//!     r#"FOR $p IN document("auction.xml")//person
//!        WHERE $p/age > 25
//!        RETURN $p/name"#,
//!     &db,
//! ).unwrap();
//! assert_eq!(tlc::execute_to_string(&db, &plan).unwrap(), "<name>Ann</name>");
//! ```

pub mod analyze;
pub mod arena;
pub mod error;
pub mod exec;
pub mod generator;
pub mod guide;
pub mod lint;
pub mod logical_class;
pub mod matching;
pub mod ops;
pub mod optimizer;
pub mod output;
pub mod par;
pub mod pattern;
pub mod physical;
pub mod plan;
pub mod rewrite;
pub mod stats;
pub mod translate;
pub mod tree;
pub mod vm;

pub use analyze::{
    analyze, distinctness, plan_footprint, temp_classes, verify, AnalyzeError, Card, Distinctness,
    Footprint, PlanType, PredDomain,
};
pub use arena::{ExecArena, RegFrame, DEFAULT_ARENA_BYTES};
pub use error::{Error, Result};
pub use exec::{
    check_conformance, execute, execute_to_string, execute_traced, execute_with_ctx,
    execute_with_deadline, match_chain_footprints, match_chain_key, match_chain_keys, render_trace,
    AnchorRange, ExecCtx, MatchCache, OpTrace,
};
pub use generator::{random_plan, GenPlan};
pub use lint::{lint, Lint, LintCode};
pub use logical_class::{LclGen, LclId};
pub use optimizer::{optimize_costed, optimize_costed_with, CostModel};
pub use output::{serialize_results, serialize_tree};
pub use pattern::{Apt, AptRoot, ContentPred, MSpec, PredValue};
pub use plan::Plan;
pub use rewrite::{
    optimize, optimize_verified, prune_dead_classes, prune_with_report, PruneReport,
    RewriteViolation,
};
pub use stats::ExecStats;
pub use translate::{translate, translate_with_style, Style};
pub use tree::{RNodeId, RSource, ResultTree, TempIdGen};

/// Parses an XQuery string and translates it into a TLC plan — the main
/// one-call entry point (parse + translate).
pub fn compile(query: &str, db: &xmldb::Database) -> Result<Plan> {
    compile_with_style(query, db, Style::Tlc)
}

/// Parses and translates with an explicit plan style (TLC / GTP / TAX).
pub fn compile_with_style(query: &str, db: &xmldb::Database, style: Style) -> Result<Plan> {
    let ast = xquery::parse(query).map_err(|e| Error::Unsupported(format!("parse: {e}")))?;
    translate::translate_with_style(&ast, db, style)
}
