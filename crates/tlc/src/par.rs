//! Intra-query parallel execution: interval-range sharding with
//! document-order merge.
//!
//! The interval encoding makes every tag-index candidate list
//! range-partitionable for free ([`xmldb::RangePartition`]): splitting the
//! *anchor* class's candidates by pre-order window yields shards whose
//! merge-based structural joins run independently, and whose outputs
//! concatenate back in document order with no cross-shard communication.
//! This module is the planner and the per-shard execution primitives; the
//! query service drives the same primitives through its worker pool, and
//! [`execute_sharded`] / [`execute_sharded_vm`] are self-contained
//! scoped-thread drivers for tests and `experiments parallel`.
//!
//! # What shards
//!
//! [`plan_shards`] walks the plan's *left spine* — root down through
//! single-input operators and each join's left child — to the bottom
//! document-rooted `Select`. The spine's **anchor** is the pattern child
//! the matcher evaluates slowest-varying (its candidates group the witness
//! trees, so a range split of exactly that class concatenates back to the
//! sequential tree order). Execution is byte-identical to sequential
//! because every spine operator is per-tree (`Filter`, `Project`,
//! extension `Select`s, `Aggregate`, `Construct`, …), a `DupElim` is
//! admitted only when it keys on the anchor class (equal keys then never
//! span shards), and a `Join` emits in left-input order, so concatenating
//! left-sharded join outputs over an identical right input reproduces the
//! sequential output. Anything else — `Sort`, `GroupBy`, `Union`,
//! node-identity joins — falls back to sequential execution.
//!
//! # Stages
//!
//! Each join's right child is a self-contained subplan (its leaves are
//! document-rooted). Rather than re-evaluating it inside every shard, it
//! becomes a **stage**: computed once per request — itself range-sharded
//! when its own spine analysis allows — and injected into the final-wave
//! shards by plan-node identity ([`ExecCtx::injected`]). The register-IR
//! backend runs whole programs per shard instead (no injection point in a
//! lowered program), trading some repeated right-side work for the same
//! byte-identical merge.
//!
//! # Soundness knobs on [`ExecCtx`]
//!
//! Shard contexts never carry a match cache: chain keys do not encode
//! ranges, so a range-restricted result under an unrestricted key would
//! poison the cache. Sibling shards share a cancellation flag — the first
//! failure (or deadline expiry) aborts the others at deadline-tick
//! granularity — and disjoint [`TempIdGen`] ranges, so temporary idents
//! minted concurrently can never alias.

use crate::arena::ExecArena;
use crate::error::{Error, Result};
use crate::exec::{execute_with_ctx, AnchorRange, ExecCtx};
use crate::logical_class::LclId;
use crate::ops::join::JoinKeyKind;
use crate::pattern::{Apt, AptRoot, MSpec};
use crate::plan::Plan;
use crate::stats::ExecStats;
use crate::tree::{ResultTree, TempIdGen};
use crate::vm;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use xmldb::{Database, DocId, OrdRange, RangePartition};

/// Temporary-id generators of sibling shards are spaced this far apart;
/// 2^40 ids per shard is unreachable within one request, and ids are
/// per-request scratch (they never persist or serialize).
const SHARD_TMP_STRIDE_BITS: u32 = 40;

/// Shard-count policy: how aggressively to split, and when not to bother.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Upper bound on shards per execution wave; values below 2 disable
    /// sharding entirely.
    pub max_shards: usize,
    /// Anchor-candidate count below which execution stays sequential — the
    /// cost threshold under which per-shard setup cannot amortize.
    pub min_candidates: usize,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy { max_shards: 8, min_candidates: 512 }
    }
}

/// Why a plan fell back to sequential execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unshardable {
    /// Sharding is disabled by policy (`max_shards < 2`).
    Disabled,
    /// The spine contains an operator whose output depends on the whole
    /// tree set at once (named here), so a range split would reorder or
    /// merge incorrectly.
    Op(&'static str),
    /// A spine `DupElim` keys on classes other than the shard anchor;
    /// equal keys could then span shards and survive deduplication.
    DupElimKey,
    /// The bottom of the spine is not a shardable document-rooted select
    /// (reason named).
    Anchor(&'static str),
    /// The anchor has fewer candidates than the policy threshold.
    FewCandidates(usize),
}

impl std::fmt::Display for Unshardable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unshardable::Disabled => write!(f, "sharding disabled by policy"),
            Unshardable::Op(op) => write!(f, "non-shardable operator: {op}"),
            Unshardable::DupElimKey => write!(f, "duplicate elimination keys off the anchor"),
            Unshardable::Anchor(why) => write!(f, "no shardable anchor: {why}"),
            Unshardable::FewCandidates(n) => {
                write!(f, "only {n} anchor candidate(s), below the cost threshold")
            }
        }
    }
}

/// One pre-computed join right-child subplan of a sharded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Path of input indexes from the plan root to the stage subplan (the
    /// join's right child), resolvable via [`resolve_path`]. Paths — not
    /// raw pointers — keep the descriptor independent of any particular
    /// plan allocation's lifetime.
    pub path: Vec<usize>,
    /// The stage's own shard anchor when its spine analysis succeeded;
    /// `None` runs the stage as one sequential unit.
    pub anchor_lcl: Option<LclId>,
    /// Per-shard windows for the stage (one full-document window when the
    /// stage runs sequentially).
    pub ranges: Vec<OrdRange>,
}

/// The shard set planned for one verified plan against one snapshot.
///
/// Valid only for the exact plan and database snapshot it was planned
/// against — window boundaries come from the snapshot's posting lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The class whose candidates are range-restricted per shard.
    pub anchor_lcl: LclId,
    /// The document the anchor select reads.
    pub doc: DocId,
    /// Anchor-candidate count in `doc` (the shard-count driver).
    pub candidates: usize,
    /// Final-wave windows: disjoint, covering, in document order.
    pub ranges: Vec<OrdRange>,
    /// Join right-child stages, outermost join first.
    pub stages: Vec<Stage>,
}

impl ShardPlan {
    /// Total shard jobs a staged (tree-walk) execution runs.
    pub fn job_count(&self) -> usize {
        self.ranges.len() + self.stages.iter().map(|s| s.ranges.len()).sum::<usize>()
    }
}

/// Resolves a [`Stage::path`] back to its subplan node.
///
/// Panics if the path does not exist in `plan` — paths are only meaningful
/// for the plan they were produced from.
pub fn resolve_path<'p>(plan: &'p Plan, path: &[usize]) -> &'p Plan {
    let mut cur = plan;
    for &i in path {
        cur = cur.inputs()[i];
    }
    cur
}

/// What one left-spine walk found.
struct SpineScan<'p> {
    /// The bottom document-rooted select's APT.
    anchor_apt: &'p Apt,
    /// Paths to every join's right child, outermost first.
    stage_paths: Vec<Vec<usize>>,
    /// Key-class lists of every `DupElim` on the spine, validated against
    /// the anchor class once it is known.
    dupelim_keys: Vec<&'p [LclId]>,
}

/// Walks the left spine of `plan` down to its anchor select, collecting
/// stages and checking every operator against the order-preserving set.
fn scan_spine(plan: &Plan) -> std::result::Result<SpineScan<'_>, Unshardable> {
    let mut cur = plan;
    let mut path = Vec::new();
    let mut stage_paths = Vec::new();
    let mut dupelim_keys = Vec::new();
    loop {
        match cur {
            Plan::Select { input, apt } => match &apt.root {
                AptRoot::Document { .. } => {
                    if input.is_some() {
                        return Err(Unshardable::Anchor("document select with an input"));
                    }
                    return Ok(SpineScan { anchor_apt: apt, stage_paths, dupelim_keys });
                }
                AptRoot::Lcl(_) => match input {
                    Some(i) => {
                        path.push(0);
                        cur = i;
                    }
                    None => return Err(Unshardable::Anchor("extension select without input")),
                },
            },
            Plan::DupElim { input, on, .. } => {
                dupelim_keys.push(on.as_slice());
                path.push(0);
                cur = input;
            }
            Plan::Join { left, spec, .. } => {
                if matches!(&spec.pred, Some(p) if p.key == JoinKeyKind::NodeId) {
                    return Err(Unshardable::Op("node-identity join"));
                }
                let mut right_path = path.clone();
                right_path.push(1);
                stage_paths.push(right_path);
                path.push(0);
                cur = left;
            }
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Construct { input, .. }
            | Plan::Flatten { input, .. }
            | Plan::Shadow { input, .. }
            | Plan::Illuminate { input, .. }
            | Plan::Materialize { input, .. } => {
                path.push(0);
                cur = input;
            }
            Plan::Sort { .. } => return Err(Unshardable::Op("sort")),
            Plan::GroupBy { .. } => return Err(Unshardable::Op("group-by")),
            Plan::Union { .. } => return Err(Unshardable::Op("union")),
        }
    }
}

/// Picks the shard anchor of a document-rooted APT: the top-level pattern
/// child the matcher evaluates slowest-varying (first in its
/// selectivity-driven order — required before optional, smaller posting
/// lists first, canonical form as the tiebreak). Witness trees group by
/// that child's candidates in document order, which is exactly what makes
/// range-concatenation equal the sequential order. The edge must be `-`
/// (fan-out, required): grouping edges cluster all candidates into one
/// tree, and optional edges emit an empty witness when nothing matches —
/// both would multiply per shard.
fn pick_anchor(db: &Database, apt: &Apt) -> std::result::Result<(usize, LclId), Unshardable> {
    let mut kids: Vec<usize> = apt.children_of(None).collect();
    if kids.is_empty() {
        return Err(Unshardable::Anchor("pattern has no top-level children"));
    }
    let forms = apt.canonical_forms();
    let key = |v: usize| {
        let n = &apt.nodes[v];
        (n.mspec.optional(), db.tag_index().get(n.tag).len())
    };
    kids.sort_by(|&a, &b| key(a).cmp(&key(b)).then_with(|| forms[a].cmp(&forms[b])));
    let top = kids[0];
    if apt.nodes[top].mspec != MSpec::One {
        return Err(Unshardable::Anchor("slowest-varying edge is not a '-' fan-out"));
    }
    Ok((top, apt.nodes[top].lcl))
}

/// Range-plans the anchor of one spine: candidate count and equal-count
/// windows over the anchor's tag postings in its document.
fn anchor_windows(
    db: &Database,
    apt: &Apt,
    anchor_node: usize,
    shards: usize,
) -> std::result::Result<(DocId, usize, Vec<OrdRange>), Unshardable> {
    let AptRoot::Document { name, .. } = &apt.root else {
        return Err(Unshardable::Anchor("not document-rooted"));
    };
    let doc = db.document_by_name(name).map_err(|_| Unshardable::Anchor("unknown document"))?;
    let postings = db.tag_index().get(apt.nodes[anchor_node].tag);
    let candidates = OrdRange::full(doc).slice(postings).len();
    let k = shards.min(candidates.max(1));
    let part = RangePartition::split_postings(postings, doc, k);
    Ok((doc, candidates, part.ranges().to_vec()))
}

/// Plans a shard set for `plan` against `db`, or reports why execution
/// should stay sequential. The result is tied to this exact snapshot (its
/// posting lists set the window boundaries) and — through [`Stage::path`] —
/// to this plan's shape.
pub fn plan_shards(
    db: &Database,
    plan: &Plan,
    policy: ShardPolicy,
) -> std::result::Result<ShardPlan, Unshardable> {
    if policy.max_shards < 2 {
        return Err(Unshardable::Disabled);
    }
    let scan = scan_spine(plan)?;
    let (anchor_node, anchor_lcl) = pick_anchor(db, scan.anchor_apt)?;
    if scan.dupelim_keys.iter().any(|on| !on.iter().all(|l| *l == anchor_lcl)) {
        return Err(Unshardable::DupElimKey);
    }
    let (doc, candidates, _) = anchor_windows(db, scan.anchor_apt, anchor_node, 1)?;
    if candidates < policy.min_candidates {
        return Err(Unshardable::FewCandidates(candidates));
    }
    let (_, _, ranges) = anchor_windows(db, scan.anchor_apt, anchor_node, policy.max_shards)?;
    let stages =
        scan.stage_paths.into_iter().map(|path| stage_plan(db, plan, path, policy)).collect();
    Ok(ShardPlan { anchor_lcl, doc, candidates, ranges, stages })
}

/// Plans one stage: sharded by its own spine when that analysis succeeds
/// and the stage is itself heavy enough (nested stages are not expanded —
/// a stage containing its own join runs as one sequential unit).
fn stage_plan(db: &Database, plan: &Plan, path: Vec<usize>, policy: ShardPolicy) -> Stage {
    let sub = resolve_path(plan, &path);
    let sharded = scan_spine(sub).ok().filter(|s| s.stage_paths.is_empty()).and_then(|scan| {
        let (anchor_node, anchor_lcl) = pick_anchor(db, scan.anchor_apt).ok()?;
        if scan.dupelim_keys.iter().any(|on| !on.iter().all(|l| *l == anchor_lcl)) {
            return None;
        }
        let (_, candidates, _) = anchor_windows(db, scan.anchor_apt, anchor_node, 1).ok()?;
        if candidates < policy.min_candidates {
            return None;
        }
        let (_, _, ranges) =
            anchor_windows(db, scan.anchor_apt, anchor_node, policy.max_shards).ok()?;
        Some((anchor_lcl, ranges))
    });
    match sharded {
        Some((lcl, ranges)) => Stage { path, anchor_lcl: Some(lcl), ranges },
        None => Stage { path, anchor_lcl: None, ranges: Vec::new() },
    }
}

/// The per-shard runtime inputs shared by [`run_shard`] and
/// [`run_shard_vm`]: a temp-id slot unique within the request (slot 0 is
/// conventionally left to sequential execution), the request's deadline
/// and shared cancellation flag, and a shard-private execution arena
/// (disjoint arenas keep sibling shards allocation-independent).
pub struct ShardEnv {
    /// Temp-id slot; shifted into the high bits of the shard's id stride.
    pub tmp_slot: u64,
    /// The request's wall-clock budget, if any.
    pub deadline: Option<Instant>,
    /// Raised by the first failing sibling; observed at tick granularity.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Buffer arena this shard draws from; returned on success only.
    pub arena: ExecArena,
}

/// Builds the context one shard job runs under: no match cache (chain keys
/// do not encode ranges) plus everything in [`ShardEnv`].
fn shard_ctx(
    env: ShardEnv,
    anchor: Option<AnchorRange>,
    injected: Vec<(usize, Arc<Vec<ResultTree>>)>,
) -> ExecCtx {
    let mut ctx = ExecCtx::new();
    ctx.tmp = TempIdGen::starting_at(env.tmp_slot << SHARD_TMP_STRIDE_BITS);
    ctx.deadline = env.deadline;
    ctx.cancel = env.cancel;
    ctx.anchor_range = anchor;
    ctx.injected = injected;
    ctx.arena = env.arena;
    ctx
}

/// Runs one tree-walk shard on the calling thread, returning its slice of
/// the result sequence. The arena comes back in the success tuple so a
/// pooling caller can recycle it; on error it is dropped here — a failed
/// or cancelled shard's arena is never reused (see `crate::arena`).
pub fn run_shard(
    db: &Database,
    plan: &Plan,
    anchor: Option<AnchorRange>,
    injected: Vec<(usize, Arc<Vec<ResultTree>>)>,
    env: ShardEnv,
) -> Result<(Vec<ResultTree>, ExecStats, ExecArena)> {
    let mut ctx = shard_ctx(env, anchor, injected);
    let trees = execute_with_ctx(db, plan, &mut ctx)?;
    Ok((trees, ctx.stats, ctx.arena))
}

/// Runs one register-IR shard: the whole program under an anchor-range
/// restriction (stages are a tree-walk concept; a lowered program has no
/// injection point, so each shard re-derives the right sides). Arena
/// semantics as in [`run_shard`].
pub fn run_shard_vm(
    db: &Database,
    prog: &vm::Program,
    anchor: AnchorRange,
    env: ShardEnv,
) -> Result<(Vec<ResultTree>, ExecStats, ExecArena)> {
    let mut ctx = shard_ctx(env, Some(anchor), Vec::new());
    let trees = vm::run(db, prog, &mut ctx)?;
    Ok((trees, ctx.stats, ctx.arena))
}

/// Runs one wave of shard jobs on scoped OS threads and concatenates their
/// outputs in window order — the document-order merge. A failing shard
/// raises `cancel` itself (before this thread even observes the failure),
/// so siblings stop at tick granularity; every join is still awaited, so
/// no orphaned shard work survives the wave.
fn run_wave(
    work: impl Fn(u64, OrdRange) -> Result<(Vec<ResultTree>, ExecStats, ExecArena)> + Sync + Send,
    ranges: &[OrdRange],
    tmp_slot_base: u64,
    cancel: &Arc<AtomicBool>,
    stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    let results: Vec<Result<(Vec<ResultTree>, ExecStats, ExecArena)>> = std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let cancel = Arc::clone(cancel);
                let range = *r;
                s.spawn(move || {
                    let out = work(tmp_slot_base + i as u64, range);
                    if out.is_err() {
                        cancel.store(true, Ordering::Relaxed);
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
    });
    let mut merged = Vec::new();
    let mut first_err: Option<Error> = None;
    for r in results {
        match r {
            // This self-contained driver has no pool to restore into; the
            // shard arena is simply dropped with the wave.
            Ok((trees, st, _arena)) => {
                stats.absorb(&st);
                merged.extend(trees);
            }
            Err(e) => {
                if first_err.is_none() || matches!(first_err, Some(Error::Cancelled)) {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(merged),
    }
}

/// Executes `plan` under `sp` across scoped OS threads — stage waves
/// first, then the final anchor-sharded wave with stage results injected —
/// and returns the merged document-order result with summed counters and
/// the number of shard jobs run. Byte-identical (after serialization) to
/// [`crate::execute`].
pub fn execute_sharded(
    db: &Database,
    plan: &Plan,
    sp: &ShardPlan,
    deadline: Option<Instant>,
) -> Result<(Vec<ResultTree>, ExecStats, usize)> {
    let cancel = Arc::new(AtomicBool::new(false));
    let mut stats = ExecStats::new();
    let mut jobs = 0usize;
    let mut slot = 1u64;
    let mut injected: Vec<(usize, Arc<Vec<ResultTree>>)> = Vec::new();
    for stage in &sp.stages {
        let sub = resolve_path(plan, &stage.path);
        let key = std::ptr::from_ref(sub) as usize;
        let trees = match stage.anchor_lcl {
            Some(lcl) => {
                let out = run_wave(
                    |tmp_slot, range| {
                        run_shard(
                            db,
                            sub,
                            Some(AnchorRange { lcl, range }),
                            Vec::new(),
                            ShardEnv {
                                tmp_slot,
                                deadline,
                                cancel: Some(Arc::clone(&cancel)),
                                arena: ExecArena::default(),
                            },
                        )
                    },
                    &stage.ranges,
                    slot,
                    &cancel,
                    &mut stats,
                )?;
                jobs += stage.ranges.len();
                slot += stage.ranges.len() as u64;
                out
            }
            None => {
                let (trees, st, _arena) = run_shard(
                    db,
                    sub,
                    None,
                    Vec::new(),
                    ShardEnv {
                        tmp_slot: slot,
                        deadline,
                        cancel: Some(Arc::clone(&cancel)),
                        arena: ExecArena::default(),
                    },
                )?;
                stats.absorb(&st);
                jobs += 1;
                slot += 1;
                trees
            }
        };
        injected.push((key, Arc::new(trees)));
    }
    let lcl = sp.anchor_lcl;
    let merged = run_wave(
        |tmp_slot, range| {
            run_shard(
                db,
                plan,
                Some(AnchorRange { lcl, range }),
                injected.clone(),
                ShardEnv {
                    tmp_slot,
                    deadline,
                    cancel: Some(Arc::clone(&cancel)),
                    arena: ExecArena::default(),
                },
            )
        },
        &sp.ranges,
        slot,
        &cancel,
        &mut stats,
    )?;
    jobs += sp.ranges.len();
    Ok((merged, stats, jobs))
}

/// The register-IR counterpart of [`execute_sharded`]: one wave of
/// whole-program shards under anchor-range restrictions.
pub fn execute_sharded_vm(
    db: &Database,
    prog: &vm::Program,
    sp: &ShardPlan,
    deadline: Option<Instant>,
) -> Result<(Vec<ResultTree>, ExecStats, usize)> {
    let cancel = Arc::new(AtomicBool::new(false));
    let mut stats = ExecStats::new();
    let lcl = sp.anchor_lcl;
    let merged = run_wave(
        |tmp_slot, range| {
            run_shard_vm(
                db,
                prog,
                AnchorRange { lcl, range },
                ShardEnv {
                    tmp_slot,
                    deadline,
                    cancel: Some(Arc::clone(&cancel)),
                    arena: ExecArena::default(),
                },
            )
        },
        &sp.ranges,
        1,
        &cancel,
        &mut stats,
    )?;
    Ok((merged, stats, sp.ranges.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::serialize_results;

    fn db() -> Database {
        let mut db = Database::new();
        let people: String = (0..32)
            .map(|i| format!("<person id=\"{i}\"><name>p{i}</name><age>{}</age></person>", 20 + i))
            .collect();
        db.load_xml("t.xml", &format!("<site>{people}</site>")).unwrap();
        db
    }

    fn compile(db: &Database, q: &str) -> Plan {
        crate::compile(q, db).unwrap()
    }

    #[test]
    fn select_plans_shard_and_merge_byte_identically() {
        let db = db();
        let plan = compile(&db, "FOR $p IN document(\"t.xml\")//person RETURN $p/name");
        let reference = crate::execute_to_string(&db, &plan).unwrap();
        for k in [1, 2, 3, 7, 64] {
            let sp =
                plan_shards(&db, &plan, ShardPolicy { max_shards: k.max(2), min_candidates: 1 })
                    .unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert_eq!(sp.candidates, 32);
            let (trees, _, _) = execute_sharded(&db, &plan, &sp, None).unwrap();
            assert_eq!(serialize_results(&db, &trees), reference, "k={k}");
        }
    }

    #[test]
    fn vm_shards_match_the_walker() {
        let db = db();
        let plan =
            compile(&db, "FOR $p IN document(\"t.xml\")//person WHERE $p/age > 30 RETURN $p/name");
        let reference = crate::execute_to_string(&db, &plan).unwrap();
        let prog = vm::lower(&plan).unwrap();
        let sp = plan_shards(&db, &plan, ShardPolicy { max_shards: 4, min_candidates: 1 }).unwrap();
        let (trees, _, jobs) = execute_sharded_vm(&db, &prog, &sp, None).unwrap();
        assert_eq!(jobs, 4);
        assert_eq!(serialize_results(&db, &trees), reference);
    }

    #[test]
    fn policy_thresholds_fall_back() {
        let db = db();
        let plan = compile(&db, "FOR $p IN document(\"t.xml\")//person RETURN $p/name");
        assert_eq!(
            plan_shards(&db, &plan, ShardPolicy { max_shards: 1, min_candidates: 1 }),
            Err(Unshardable::Disabled)
        );
        assert_eq!(
            plan_shards(&db, &plan, ShardPolicy { max_shards: 4, min_candidates: 1000 }),
            Err(Unshardable::FewCandidates(32))
        );
    }

    #[test]
    fn sorts_fall_back_sequential() {
        let db = db();
        let plan =
            compile(&db, "FOR $p IN document(\"t.xml\")//person ORDER BY $p/age RETURN $p/name");
        assert!(matches!(
            plan_shards(&db, &plan, ShardPolicy { max_shards: 4, min_candidates: 1 }),
            Err(Unshardable::Op("sort"))
        ));
    }

    #[test]
    fn expired_deadline_aborts_every_shard() {
        let db = db();
        let plan = compile(&db, "FOR $p IN document(\"t.xml\")//person RETURN $p/name");
        let sp = plan_shards(&db, &plan, ShardPolicy { max_shards: 4, min_candidates: 1 }).unwrap();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = execute_sharded(&db, &plan, &sp, Some(past)).unwrap_err();
        assert_eq!(err, Error::DeadlineExceeded);
    }

    #[test]
    fn cancelled_siblings_report_the_real_error() {
        // A pre-raised cancel flag makes every shard abort; the wave must
        // surface Cancelled (there is no richer error to prefer).
        let db = db();
        let plan = compile(&db, "FOR $p IN document(\"t.xml\")//person RETURN $p/name");
        let cancel = Arc::new(AtomicBool::new(true));
        let env = ShardEnv {
            tmp_slot: 1,
            deadline: None,
            cancel: Some(cancel),
            arena: ExecArena::default(),
        };
        let err = run_shard(&db, &plan, None, Vec::new(), env).unwrap_err();
        assert_eq!(err, Error::Cancelled);
    }
}
