//! The grouping procedure used by the TAX and GTP baselines (paper §6.1).
//!
//! TAX and GTP lack annotated pattern edges, so everything TLC expresses
//! with a `+`/`*` edge is recovered by an explicit *grouping procedure*:
//! split the witness set into the nested branch, group by the parent node,
//! project, and merge the produced paths back (a DAG-like plan shape). The
//! paper's §6.3 lists its three costs against TLC's nest-joins:
//!
//! 1. group-by costs more than nest-joins,
//! 2. the projection must re-walk the grouped results to retrieve the
//!    nested nodes (TLC just uses an LC reference),
//! 3. the split/merge DAG breaks pipelining.
//!
//! This operator performs those passes *for real* — per-member split trees,
//! hash grouping, cluster rebuilding, a node-identity merge-back join, and a
//! re-walk of every clustered member's stored subtree — while producing
//! output trees semantically identical to its input (whose members are
//! already clustered, since our matcher clusters during the match). That
//! identity is what lets the cross-engine equivalence tests hold while the
//! baselines still pay the algorithmic costs the paper attributes to them.

use crate::error::{Error, Result};
use crate::logical_class::LclId;
use crate::stats::ExecStats;
use crate::tree::{IdentKey, RNodeId, ResultTree};
use std::collections::HashMap;
use xmldb::Database;

/// Runs one grouping procedure: group the members of `collect` by the
/// (singleton) `by` node of each tree.
pub fn grouping_procedure(
    db: &Database,
    inputs: Vec<ResultTree>,
    by: LclId,
    collect: LclId,
    stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    // --- Split: one small (by, member) pair tree per collected member.
    struct Pair {
        key: IdentKey,
        member_tree: ResultTree,
    }
    let mut pairs: Vec<Pair> = Vec::new();
    for t in &inputs {
        let Some(by_node) = t.singleton(by).or_else(|| t.singleton_all(by)) else {
            // Group key absent (e.g. an optional branch): nothing to split.
            continue;
        };
        let key = t.node(by_node).ident();
        for m in t.members(collect) {
            // A real projection of the branch: copy the member subtree out.
            let member_tree = extract(t, m);
            stats.trees_built += 1;
            pairs.push(Pair { key, member_tree });
        }
    }
    // --- Group: hash the pairs by parent identity, deduplicating members
    // that reached the group through several fanned-out witness trees.
    let mut groups: HashMap<IdentKey, Vec<ResultTree>> = HashMap::with_capacity(pairs.len());
    let mut seen: std::collections::HashSet<(IdentKey, IdentKey)> =
        std::collections::HashSet::new();
    for p in pairs {
        let member_ident = p.member_tree.node(p.member_tree.root()).ident();
        if seen.insert((p.key, member_ident)) {
            groups.entry(p.key).or_default().push(p.member_tree);
        }
    }
    // --- Project/re-walk: retrieving the nested nodes from the grouped
    // result requires touching them again (cost 2 above).
    for cluster in groups.values() {
        for t in cluster {
            if let crate::tree::RSource::Base(id) = &t.node(t.root()).source {
                let n = db.node(*id);
                stats.nodes_inspected += n.subtree_size() as u64;
            } else {
                stats.nodes_inspected += t.len() as u64;
            }
        }
    }
    // --- Merge back: node-identity join of the clusters onto the input set.
    let mut out = Vec::with_capacity(inputs.len());
    for t in inputs {
        let Some(by_node) = t.singleton(by).or_else(|| t.singleton_all(by)) else {
            out.push(t);
            continue;
        };
        let key = t.node(by_node).ident();
        stats.join_steps += 1;
        // Rebuild the tree with its collect members replaced by the grouped
        // cluster (split/merge pass — semantically identical, really built).
        let existing: Vec<RNodeId> = t.members_all(collect).to_vec();
        let mut rebuilt = t.without(&existing);
        if let Some(cluster) = groups.get(&key) {
            let attach = rebuilt
                .members(by)
                .first()
                .copied()
                .ok_or(Error::NotSingleton { lcl: by, found: 0 })?;
            for member in cluster {
                rebuilt.graft(member, attach);
            }
        }
        stats.trees_built += 1;
        out.push(rebuilt);
    }
    Ok(out)
}

/// Copies the subtree rooted at `m` (with labels) into a standalone tree.
fn extract(src: &ResultTree, m: RNodeId) -> ResultTree {
    let mut dst = ResultTree::with_root(src.node(m).source.clone());
    for &l in &src.node(m).lcls {
        dst.assign_lcl(dst.root(), l);
    }
    let root = dst.root();
    copy_children(src, m, &mut dst, root);
    dst
}

fn copy_children(src: &ResultTree, from: RNodeId, dst: &mut ResultTree, to: RNodeId) {
    for &c in &src.node(from).children {
        let copy = dst.add_node(to, src.node(c).source.clone());
        if src.node(c).shadowed {
            dst.set_shadowed(copy, true);
        }
        for &l in &src.node(c).lcls {
            dst.assign_lcl(copy, l);
        }
        copy_children(src, c, dst, copy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RSource;

    fn setup() -> (Database, Vec<ResultTree>) {
        let mut db = Database::new();
        db.load_xml("g.xml", "<r><o><b/><b/><b/></o><o><b/></o></r>").unwrap();
        let os = db.nodes_with_tag("o");
        let trees = os
            .iter()
            .map(|&o| {
                let mut t = ResultTree::with_root(RSource::Base(o));
                t.assign_lcl(t.root(), LclId(1));
                let bs: Vec<_> = db.node(o).children().map(|c| c.id()).collect();
                for b in bs {
                    let id = t.add_node(t.root(), RSource::Base(b));
                    t.assign_lcl(id, LclId(2));
                }
                t
            })
            .collect();
        (db, trees)
    }

    #[test]
    fn grouping_procedure_is_semantically_identity() {
        let (db, trees) = setup();
        let before: Vec<usize> = trees.iter().map(|t| t.members(LclId(2)).len()).collect();
        let mut s = ExecStats::new();
        let out = grouping_procedure(&db, trees, LclId(1), LclId(2), &mut s).unwrap();
        let after: Vec<usize> = out.iter().map(|t| t.members(LclId(2)).len()).collect();
        assert_eq!(before, after);
        for t in &out {
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn grouping_procedure_pays_real_costs() {
        let (db, trees) = setup();
        let mut s = ExecStats::new();
        grouping_procedure(&db, trees, LclId(1), LclId(2), &mut s).unwrap();
        assert!(s.nodes_inspected >= 4, "re-walk of grouped members is charged");
        assert!(s.trees_built >= 6, "split trees and merged trees are really built");
    }

    #[test]
    fn missing_group_key_passes_through() {
        let (db, mut trees) = setup();
        // A tree without class (1).
        let orphan = ResultTree::with_root(trees[0].node(trees[0].root()).source.clone());
        trees.push(orphan);
        let mut s = ExecStats::new();
        let out = grouping_procedure(&db, trees, LclId(1), LclId(2), &mut s).unwrap();
        assert_eq!(out.len(), 3);
    }
}
