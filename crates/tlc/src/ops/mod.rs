//! The TLC algebraic operators (paper §2.3 and §4).
//!
//! Every operator maps one or more sets of trees to one set of trees.
//! Operators reference nodes exclusively through logical class labels, so a
//! heterogeneous input behaves as if it were homogeneous (its logical class
//! reduction). The modules are:
//!
//! * [`mod@select`] — Select `S[apt]`: APT match against base data or as a
//!   pattern-tree extension of the input (§4.1).
//! * [`mod@filter`] — Filter `F[lcl, p, m]` with Every / at-least-one / exactly-
//!   one modes.
//! * [`mod@join`] — Join `J[apt, p]`: value join (sort-merge-sort) stitching a
//!   left tree with one or more right trees under a `join_root`, with all
//!   four matching specifications on the right edge.
//! * [`mod@project`] — Project `P[nl]`.
//! * [`mod@dupelim`] — Duplicate-Elimination `DE[nl, ci]` by node identity or
//!   content.
//! * [`mod@aggregate`] — Aggregate-Function `AF[fname, lcl, newLCL]`.
//! * [`mod@construct`] — Construct `C[c]` with annotated construct-pattern trees.
//! * [`mod@sort`] — Sort by class values, plus document-order restoration.
//! * [`restructure`] — Flatten (Definition 5), Shadow (Definition 6) and
//!   Illuminate (Definition 7).
//! * [`mod@union_all`] — Union (used for OR translation).

pub mod aggregate;
pub mod construct;
pub mod dupelim;
pub mod filter;
pub mod grouping;
pub mod join;
pub mod materialize;
pub mod project;
pub mod restructure;
pub mod select;
pub mod sort;
pub mod union_all;

pub use aggregate::aggregate;
pub use construct::{construct, ConstructItem, ConstructValue};
pub use dupelim::{duplicate_elimination, DedupKind};
pub use filter::{filter, FilterMode, FilterPred};
pub use grouping::grouping_procedure;
pub use join::{join, JoinKeyKind, JoinPred, JoinSpec};
pub use materialize::materialize;
pub use project::project;
pub use restructure::{flatten, illuminate, shadow};
pub use select::select;
pub use sort::{sort_by_keys, sort_doc_order, SortKey};
pub use union_all::union_all;
