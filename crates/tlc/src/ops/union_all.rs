//! Union — used by the translator for OR (`ORExp ::= ... OR ...` is
//! "translated to UNION of the operators produced both sides", Figure 6),
//! followed by a node-id duplicate elimination so a tree qualifying under
//! both disjuncts appears once.

use crate::error::Result;
use crate::logical_class::LclId;
use crate::ops::dupelim::{duplicate_elimination, DedupKind};
use crate::ops::sort::sort_doc_order;
use crate::stats::ExecStats;
use crate::tree::ResultTree;
use xmldb::Database;

/// Concatenates the branches, restores document order, and removes node-id
/// duplicates over `dedup_on` (typically the FOR-variable classes).
pub fn union_all(
    db: &Database,
    branches: Vec<Vec<ResultTree>>,
    dedup_on: &[LclId],
    stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    let merged: Vec<ResultTree> = branches.into_iter().flatten().collect();
    let ordered = sort_doc_order(merged);
    if dedup_on.is_empty() {
        return Ok(ordered);
    }
    duplicate_elimination(db, ordered, dedup_on, DedupKind::NodeId, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RSource;

    #[test]
    fn union_merges_orders_and_dedups() {
        let mut db = Database::new();
        db.load_xml("u.xml", "<r><x/><x/><x/></r>").unwrap();
        let xs = db.nodes_with_tag("x");
        let mk = |n| {
            let mut t = ResultTree::with_root(RSource::Base(n));
            t.assign_lcl(t.root(), LclId(1));
            t
        };
        // Branch 1 matched x2 and x0; branch 2 matched x0 and x1.
        let b1 = vec![mk(xs[2]), mk(xs[0])];
        let b2 = vec![mk(xs[0]), mk(xs[1])];
        let mut s = ExecStats::new();
        let out = union_all(&db, vec![b1, b2], &[LclId(1)], &mut s).unwrap();
        assert_eq!(out.len(), 3);
        // Document order restored.
        let roots: Vec<_> = out.iter().map(|t| t.order_key()).collect();
        assert!(roots.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn union_without_dedup_keeps_duplicates() {
        let mut db = Database::new();
        db.load_xml("u.xml", "<r><x/></r>").unwrap();
        let x = db.nodes_with_tag("x")[0];
        let mk = || ResultTree::with_root(RSource::Base(x));
        let mut s = ExecStats::new();
        let out = union_all(&db, vec![vec![mk()], vec![mk()]], &[], &mut s).unwrap();
        assert_eq!(out.len(), 2);
    }
}
