//! Early materialization — the TAX baseline's cost model (paper §6.1).
//!
//! TAX retrieves "the entire subtree" of every node bound to an XQuery
//! variable right after its FOR/WHERE selection, "because it is assumed to
//! be used later in the query". The paper blames TAX's poor showing on this:
//! "the early materialization imposes a penalty for carrying data nodes
//! through all the groupings for counts, join, LETs etc."
//!
//! This operator performs that copy for real: every stored descendant of
//! each member of the listed classes is copied into the result tree as an
//! explicit (shadowed) node. Shadowing keeps the copies invisible to
//! serialization and downstream predicates, so all engines still produce
//! identical answers — but the memory traffic and tree-rebuild costs are
//! paid, and every later operator that clones or rebuilds trees (joins,
//! grouping procedures, projections) now drags the copies along, exactly
//! the penalty the paper describes.

use crate::logical_class::LclId;
use crate::stats::ExecStats;
use crate::tree::{RNodeId, RSource, ResultTree};
use xmldb::{Database, NodeId};

/// Copies the full stored subtrees of all members of `lcls` into each tree.
pub fn materialize(
    db: &Database,
    inputs: Vec<ResultTree>,
    lcls: &[LclId],
    stats: &mut ExecStats,
) -> Vec<ResultTree> {
    inputs
        .into_iter()
        .map(|mut t| {
            let mut targets: Vec<(RNodeId, NodeId)> = Vec::new();
            for &lcl in lcls {
                for m in t.members(lcl) {
                    if let RSource::Base(id) = &t.node(m).source {
                        targets.push((m, *id));
                    }
                }
            }
            for (attach, base) in targets {
                let copied = copy_base_subtree(db, &mut t, attach, base);
                stats.subtrees_materialized += 1;
                stats.nodes_inspected += copied;
            }
            t
        })
        .collect()
}

/// Copies the stored children of `base` (recursively) under `attach`,
/// shadowed. Returns the number of nodes copied.
fn copy_base_subtree(db: &Database, t: &mut ResultTree, attach: RNodeId, base: NodeId) -> u64 {
    let mut copied = 0;
    let children: Vec<NodeId> = db.node(base).children().map(|c| c.id()).collect();
    for c in children {
        let node = t.add_node(attach, RSource::Base(c));
        t.set_shadowed(node, true);
        copied += 1 + copy_base_subtree(db, t, node, c);
    }
    copied
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_copies_full_subtrees_shadowed() {
        let mut db = Database::new();
        db.load_xml("m.xml", "<r><p><a>1</a><b><c/></b></p></r>").unwrap();
        let p = db.nodes_with_tag("p")[0];
        let mut t = ResultTree::with_root(RSource::Base(db.nodes_with_tag("r")[0]));
        let m = t.add_node(t.root(), RSource::Base(p));
        t.assign_lcl(m, LclId(1));
        let mut s = ExecStats::new();
        let out = materialize(&db, vec![t], &[LclId(1)], &mut s);
        assert_eq!(s.subtrees_materialized, 1);
        assert_eq!(s.nodes_inspected, 3, "a, b, c copied");
        let tree = &out[0];
        assert_eq!(tree.len(), 2 + 3);
        // Copies are shadowed, so serialization is unchanged.
        let rendered = crate::output::serialize_tree(&db, tree);
        assert_eq!(rendered.matches("<a>").count(), 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn materialize_skips_temp_members() {
        let db = Database::new();
        let mut gen = crate::tree::TempIdGen::new();
        let mut t = ResultTree::with_root(RSource::Temp {
            id: gen.fresh(),
            tag: xmldb::TagId(0),
            content: None,
        });
        t.assign_lcl(t.root(), LclId(1));
        let mut s = ExecStats::new();
        let out = materialize(&db, vec![t], &[LclId(1)], &mut s);
        assert_eq!(s.subtrees_materialized, 0);
        assert_eq!(out[0].len(), 1);
    }
}
