//! Sort — by class values (ORDER BY) and by document order (§5.1).
//!
//! The value sort backs the ORDER BY clause; the document-order sort is the
//! final "sort" of the paper's sort-merge-sort join strategy, re-establishing
//! document order from root node identifiers (Property 3 of Figure 13).

use crate::logical_class::LclId;
use crate::physical::valjoin::JoinKey;
use crate::tree::ResultTree;
use xmldb::Database;

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The class whose (singleton) member value is the key.
    pub lcl: LclId,
    /// Descending order when true.
    pub descending: bool,
}

/// Stable sort by the key values. Trees missing a key value sort last.
pub fn sort_by_keys(
    db: &Database,
    mut inputs: Vec<ResultTree>,
    keys: &[SortKey],
) -> Vec<ResultTree> {
    let extracted: Vec<Vec<Option<JoinKey>>> = inputs
        .iter()
        .map(|t| {
            keys.iter()
                .map(|k| t.singleton_all(k.lcl).map(|m| JoinKey::from_text(&t.value(db, m))))
                .collect()
        })
        .collect();
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_by(|&a, &b| {
        for (ki, k) in keys.iter().enumerate() {
            let ord = match (&extracted[a][ki], &extracted[b][ki]) {
                (Some(x), Some(y)) => x.order(y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            };
            let ord = if k.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    // Apply the permutation.
    let mut slots: Vec<Option<ResultTree>> = inputs.drain(..).map(Some).collect();
    order.into_iter().map(|i| slots[i].take().expect("permutation is a bijection")).collect()
}

/// Sorts trees into document order by their root identity (base roots by
/// document position, temporary roots by creation order after all base data).
pub fn sort_doc_order(mut inputs: Vec<ResultTree>) -> Vec<ResultTree> {
    inputs.sort_by_key(ResultTree::order_key);
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RSource;

    fn setup(values: &[&str]) -> (Database, Vec<ResultTree>) {
        let mut db = Database::new();
        let body: String = values.iter().map(|v| format!("<x>{v}</x>")).collect();
        db.load_xml("s.xml", &format!("<r>{body}</r>")).unwrap();
        let trees = db
            .nodes_with_tag("x")
            .iter()
            .map(|&n| {
                let mut t = ResultTree::with_root(RSource::Base(n));
                t.assign_lcl(t.root(), LclId(1));
                t
            })
            .collect();
        (db, trees)
    }

    fn values(db: &Database, trees: &[ResultTree]) -> Vec<String> {
        trees.iter().map(|t| t.value(db, t.root())).collect()
    }

    #[test]
    fn ascending_numeric_sort() {
        let (db, trees) = setup(&["30", "10", "20"]);
        let out = sort_by_keys(&db, trees, &[SortKey { lcl: LclId(1), descending: false }]);
        assert_eq!(values(&db, &out), vec!["10", "20", "30"]);
    }

    #[test]
    fn descending_string_sort() {
        let (db, trees) = setup(&["apple", "cherry", "banana"]);
        let out = sort_by_keys(&db, trees, &[SortKey { lcl: LclId(1), descending: true }]);
        assert_eq!(values(&db, &out), vec!["cherry", "banana", "apple"]);
    }

    #[test]
    fn missing_keys_sort_last_and_sort_is_stable() {
        let (db, mut trees) = setup(&["b", "a"]);
        // A tree without class (1).
        let orphan = ResultTree::with_root(trees[0].node(trees[0].root()).source.clone());
        trees.insert(0, orphan);
        let out = sort_by_keys(&db, trees, &[SortKey { lcl: LclId(1), descending: false }]);
        let last = &out[2];
        assert!(last.members(LclId(1)).is_empty(), "keyless tree is last");
    }

    #[test]
    fn doc_order_restoration() {
        let (db, trees) = setup(&["c", "a", "b"]);
        let shuffled = vec![trees[2].clone(), trees[0].clone(), trees[1].clone()];
        let out = sort_doc_order(shuffled);
        assert_eq!(values(&db, &out), vec!["c", "a", "b"], "document order, not value order");
    }
}
