//! Duplicate-Elimination — `DE[nl, ci](S)` (paper §2.3).
//!
//! Eliminates duplicate trees based on the listed classes, which must each
//! bind to at most one node per tree (a singleton or empty; more is an
//! error, per §2.3). The `ci` parameter chooses whether the key is the node
//! *identifier* (the cheap `NodeIDDE` the translator emits after joins —
//! "all identifiers are already in memory", footnote 3) or the node
//! *content*.

use crate::error::{Error, Result};
use crate::logical_class::LclId;
use crate::stats::ExecStats;
use crate::tree::{IdentKey, ResultTree};
use std::collections::HashSet;
use xmldb::Database;

/// Key kind for duplicate elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupKind {
    /// Compare node identifiers (the translator's `NodeIDDE`).
    NodeId,
    /// Compare node content (string values).
    Content,
}

/// Runs duplicate elimination, keeping the first occurrence of each key.
pub fn duplicate_elimination(
    db: &Database,
    inputs: Vec<ResultTree>,
    on: &[LclId],
    kind: DedupKind,
    _stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    let mut seen: HashSet<Vec<Option<DedupKey>>> = HashSet::with_capacity(inputs.len());
    let mut out = Vec::with_capacity(inputs.len());
    for t in inputs {
        let mut key = Vec::with_capacity(on.len());
        for &lcl in on {
            let members = t.members_all(lcl);
            match members.len() {
                0 => key.push(None),
                1 => key.push(Some(match kind {
                    DedupKind::NodeId => DedupKey::Ident(t.node(members[0]).ident()),
                    DedupKind::Content => DedupKey::Content(t.value(db, members[0])),
                })),
                n => return Err(Error::NotSingleton { lcl, found: n }),
            }
        }
        if seen.insert(key) {
            out.push(t);
        }
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DedupKey {
    Ident(IdentKey),
    Content(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RSource;
    use xmldb::NodeId;

    fn db() -> Database {
        let mut db = Database::new();
        db.load_xml("d.xml", "<r><x>same</x><x>same</x><x>other</x></r>").unwrap();
        db
    }

    fn tree(n: NodeId) -> ResultTree {
        let mut t = ResultTree::with_root(RSource::Base(n));
        t.assign_lcl(t.root(), LclId(1));
        t
    }

    #[test]
    fn node_id_dedup_keeps_distinct_nodes() {
        let d = db();
        let xs = d.nodes_with_tag("x");
        let inputs = vec![tree(xs[0]), tree(xs[0]), tree(xs[1])];
        let mut s = ExecStats::new();
        let out =
            duplicate_elimination(&d, inputs, &[LclId(1)], DedupKind::NodeId, &mut s).unwrap();
        assert_eq!(out.len(), 2, "same node id collapses, distinct ids stay");
    }

    #[test]
    fn content_dedup_collapses_equal_values() {
        let d = db();
        let xs = d.nodes_with_tag("x");
        let inputs = vec![tree(xs[0]), tree(xs[1]), tree(xs[2])];
        let mut s = ExecStats::new();
        let out =
            duplicate_elimination(&d, inputs, &[LclId(1)], DedupKind::Content, &mut s).unwrap();
        assert_eq!(out.len(), 2, "the two 'same' values collapse");
    }

    #[test]
    fn empty_class_is_a_valid_key_component() {
        let d = db();
        let xs = d.nodes_with_tag("x");
        let mut no_class = ResultTree::with_root(RSource::Base(xs[0]));
        no_class.assign_lcl(no_class.root(), LclId(2)); // different class
        let inputs = vec![tree(xs[0]), no_class.clone(), no_class];
        let mut s = ExecStats::new();
        let out =
            duplicate_elimination(&d, inputs, &[LclId(1)], DedupKind::NodeId, &mut s).unwrap();
        assert_eq!(out.len(), 2, "the two class-less trees share the None key");
    }

    #[test]
    fn multi_member_class_is_an_error() {
        let d = db();
        let xs = d.nodes_with_tag("x");
        let mut t = tree(xs[0]);
        let extra = t.add_node(t.root(), RSource::Base(xs[1]));
        t.assign_lcl(extra, LclId(1));
        let mut s = ExecStats::new();
        assert!(duplicate_elimination(&d, vec![t], &[LclId(1)], DedupKind::NodeId, &mut s).is_err());
    }

    #[test]
    fn first_occurrence_wins() {
        let d = db();
        let xs = d.nodes_with_tag("x");
        let mut second = tree(xs[0]);
        second.add_node(second.root(), RSource::Base(xs[2]));
        let inputs = vec![tree(xs[0]), second];
        let mut s = ExecStats::new();
        let out =
            duplicate_elimination(&d, inputs, &[LclId(1)], DedupKind::NodeId, &mut s).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 1, "the first (childless) tree was kept");
    }
}
