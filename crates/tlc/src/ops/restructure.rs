//! Flatten, Shadow and Illuminate (paper §4, Definitions 5–7).
//!
//! These three operators exist to *eliminate redundant pattern matching*:
//!
//! * **Flatten** `FL[P, C]` breaks a tree with a nested (grouped) class `C`
//!   under `P` into one tree per member, dropping the other members — so a
//!   `*`-matched cluster can be re-used where `-` semantics are needed
//!   without re-matching against the database (Figure 9).
//! * **Shadow** `SH[P, C]` does the same fan-out but *retains* the other
//!   members as shadowed nodes (Figure 11) — invisible to every operator…
//! * **Illuminate** `IL[C]` …until illuminated again. Note the asymmetry the
//!   paper points out: Shadow multiplies trees, Illuminate never changes the
//!   tree count.

use crate::error::{Error, Result};
use crate::logical_class::LclId;
use crate::stats::ExecStats;
use crate::tree::{RNodeId, ResultTree};

/// Flatten (Definition 5). `parent` must be a singleton class; `child` must
/// bind to children of the parent member. Each input tree yields one output
/// tree per `child` member, retaining only that member (other members and
/// their subtrees are dropped).
pub fn flatten(
    inputs: Vec<ResultTree>,
    parent: LclId,
    child: LclId,
    stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    let mut out = Vec::new();
    for t in inputs {
        let members = check_parent_child(&t, parent, child)?;
        for &keep in &members {
            let drop: Vec<RNodeId> = members.iter().copied().filter(|&m| m != keep).collect();
            out.push(t.without(&drop));
            stats.trees_built += 1;
        }
    }
    Ok(out)
}

/// Shadow (Definition 6): like Flatten, but the non-kept members are
/// shadowed instead of dropped, so a later Illuminate can bring them back
/// without touching the database.
pub fn shadow(
    inputs: Vec<ResultTree>,
    parent: LclId,
    child: LclId,
    stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    let mut out = Vec::new();
    for t in inputs {
        let members = check_parent_child(&t, parent, child)?;
        for &keep in &members {
            let mut copy = t.clone();
            for &m in &members {
                if m != keep {
                    copy.set_shadowed(m, true);
                }
            }
            out.push(copy);
            stats.trees_built += 1;
        }
    }
    Ok(out)
}

/// Illuminate (Definition 7): renders all shadowed members of `lcl` (and
/// their subtrees) active again. The number of trees is unchanged.
pub fn illuminate(inputs: Vec<ResultTree>, lcl: LclId, _stats: &mut ExecStats) -> Vec<ResultTree> {
    inputs
        .into_iter()
        .map(|mut t| {
            for m in t.members_all(lcl).to_vec() {
                t.set_shadowed(m, false);
            }
            t
        })
        .collect()
}

/// Validates the P/C contract shared by Flatten and Shadow and returns the
/// visible members of `child`.
fn check_parent_child(t: &ResultTree, parent: LclId, child: LclId) -> Result<Vec<RNodeId>> {
    let p = t
        .singleton(parent)
        .ok_or(Error::NotSingleton { lcl: parent, found: t.members(parent).len() })?;
    let members = t.members(child);
    for &m in &members {
        if t.node(m).parent != Some(p) {
            return Err(Error::Unsupported(format!(
                "class {child} member is not a child of the {parent} member"
            )));
        }
    }
    Ok(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RSource;
    use xmldb::{DocId, NodeId};

    fn base(pre: u32) -> RSource {
        RSource::Base(NodeId::new(DocId(0), pre))
    }

    /// The Figure 11 input: B1 with A1, A2, A3 (class A under class B).
    fn fig11_tree() -> ResultTree {
        let mut t = ResultTree::with_root(base(0));
        t.assign_lcl(t.root(), LclId(1)); // B
        for pre in [1, 2, 3] {
            let a = t.add_node(t.root(), base(pre));
            t.assign_lcl(a, LclId(2)); // A
        }
        t
    }

    #[test]
    fn figure_11_flatten_vs_shadow() {
        let mut s = ExecStats::new();
        // Flatten: three trees, each with exactly one A and nothing else.
        let flat = flatten(vec![fig11_tree()], LclId(1), LclId(2), &mut s).unwrap();
        assert_eq!(flat.len(), 3);
        for t in &flat {
            assert_eq!(t.members(LclId(2)).len(), 1);
            assert_eq!(t.len(), 2, "other As are physically gone");
        }
        // Shadow: three trees, each with one visible A and two shadowed.
        let sh = shadow(vec![fig11_tree()], LclId(1), LclId(2), &mut s).unwrap();
        assert_eq!(sh.len(), 3);
        for t in &sh {
            assert_eq!(t.members(LclId(2)).len(), 1);
            assert_eq!(t.members_all(LclId(2)).len(), 3, "shadowed As retained");
            assert_eq!(t.len(), 4);
        }
        // Each member is the visible one exactly once.
        let visible: Vec<RNodeId> = sh.iter().map(|t| t.members(LclId(2))[0]).collect();
        assert_eq!(visible.len(), 3);
        assert!(visible.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn illuminate_restores_members_without_changing_tree_count() {
        let mut s = ExecStats::new();
        let sh = shadow(vec![fig11_tree()], LclId(1), LclId(2), &mut s).unwrap();
        let lit = illuminate(sh, LclId(2), &mut s);
        assert_eq!(lit.len(), 3, "Illuminate does not affect the number of trees");
        for t in &lit {
            assert_eq!(t.members(LclId(2)).len(), 3);
        }
    }

    #[test]
    fn flatten_drops_subtrees_of_other_members() {
        let mut t = fig11_tree();
        let a0 = t.members(LclId(2))[0];
        let sub = t.add_node(a0, base(9));
        t.assign_lcl(sub, LclId(3));
        let mut s = ExecStats::new();
        let flat = flatten(vec![t], LclId(1), LclId(2), &mut s).unwrap();
        // The tree keeping a0 still has the (3) node, the other two do not.
        let with_sub = flat.iter().filter(|t| !t.members(LclId(3)).is_empty()).count();
        assert_eq!(with_sub, 1);
    }

    #[test]
    fn flatten_of_empty_class_yields_no_trees() {
        let mut t = ResultTree::with_root(base(0));
        t.assign_lcl(t.root(), LclId(1));
        let mut s = ExecStats::new();
        let flat = flatten(vec![t], LclId(1), LclId(2), &mut s).unwrap();
        assert!(flat.is_empty(), "Definition 5 iterates over (p, c) pairs");
    }

    #[test]
    fn non_singleton_parent_is_an_error() {
        let mut t = fig11_tree();
        let extra = t.add_node(t.root(), base(7));
        t.assign_lcl(extra, LclId(1));
        let mut s = ExecStats::new();
        assert!(flatten(vec![t], LclId(1), LclId(2), &mut s).is_err());
    }

    #[test]
    fn non_child_member_is_an_error() {
        let mut t = fig11_tree();
        let a0 = t.members(LclId(2))[0];
        let grandchild = t.add_node(a0, base(8));
        t.assign_lcl(grandchild, LclId(2));
        let mut s = ExecStats::new();
        assert!(shadow(vec![t], LclId(1), LclId(2), &mut s).is_err());
    }
}
