//! Join — `J[apt, p](S_l, S_r)` (paper §2.3, physical strategy §5.1).
//!
//! Stitches one left tree with its matching right trees under a fresh
//! `join_root` temporary node. The right edge of the output pattern carries
//! a matching specification:
//!
//! * `-` — one output tree per matching (left, right) pair (regular value
//!   join);
//! * `?` — like `-`, but matchless left trees survive alone (left outer);
//! * `+` — one output per left tree with *all* matching rights nested
//!   (**nest-value-join**, Definition 8's value sibling);
//! * `*` — like `+` with matchless lefts surviving (left-outer-nest).
//!
//! Physically this is the paper's **sort-merge-sort**: both inputs are
//! sorted by join key, merged, and the output is emitted in the left input's
//! document order (node identifiers encode absolute order, §5.1).

use crate::error::{Error, Result};
use crate::logical_class::LclId;
use crate::pattern::MSpec;
use crate::physical::valjoin::{merge_join_eq, JoinKey};
use crate::stats::ExecStats;
use crate::tree::{IdentKey, RSource, ResultTree, TempIdGen};
use std::cmp::Ordering;
use std::collections::HashSet;
use xmldb::Database;
use xquery::CmpOp;

/// What a join key is computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinKeyKind {
    /// The textual/numeric value of the class member (the normal case).
    #[default]
    Value,
    /// The member's node identity — used by the TAX baseline to stitch its
    /// separately-matched RETURN paths back onto the FOR/WHERE result.
    NodeId,
}

/// The join predicate: values of two singleton classes, one per side.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPred {
    /// Class on the left trees.
    pub left: LclId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Class on the right trees.
    pub right: LclId,
    /// Key kind (value vs node identity).
    pub key: JoinKeyKind,
}

impl JoinPred {
    /// The common case: an equality or comparison on member values.
    pub fn value(left: LclId, op: CmpOp, right: LclId) -> JoinPred {
        JoinPred { left, op, right, key: JoinKeyKind::Value }
    }

    /// Node-identity equality (TAX's stitch join).
    pub fn node_id(left: LclId, right: LclId) -> JoinPred {
        JoinPred { left, op: CmpOp::Eq, right, key: JoinKeyKind::NodeId }
    }
}

/// Join parameters (the operator's output APT, reduced to what the fragment
/// needs: a `join_root` label plus the right edge's matching specification).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Class label of the created `join_root`.
    pub root_lcl: LclId,
    /// Matching specification of the right edge.
    pub right_mspec: MSpec,
    /// Join predicate; `None` means Cartesian product.
    pub pred: Option<JoinPred>,
    /// When set, right matches of one left tree are deduplicated by the
    /// identity of this class's singleton — used by the translator for
    /// LET-subquery joins so one auction is nested once per person even when
    /// several of its bidders matched (see DESIGN.md on Figure 8).
    pub dedup_right_on: Option<LclId>,
}

/// Runs the join. Output trees are in left-input order (document order when
/// the left input was in document order), with nested rights in right-input
/// order.
pub fn join(
    db: &Database,
    left: Vec<ResultTree>,
    right: Vec<ResultTree>,
    spec: &JoinSpec,
    tmp: &mut TempIdGen,
    stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    // match lists: for each left index, the matching right indexes in order.
    let matches: Vec<Vec<usize>> = match &spec.pred {
        None => {
            let all: Vec<usize> = (0..right.len()).collect();
            vec![all; left.len()]
        }
        Some(pred) => {
            stats.join_steps += (left.len() + right.len()) as u64;
            let pairs = match pred.key {
                JoinKeyKind::Value => {
                    let lk = keys(db, &left, pred.left)?;
                    let rk = keys(db, &right, pred.right)?;
                    match pred.op {
                        CmpOp::Eq => {
                            // Trees without a key value cannot match; map the
                            // dense (keyed) indexes back afterwards.
                            let (li, lkeys): (Vec<usize>, Vec<JoinKey>) = lk
                                .iter()
                                .enumerate()
                                .filter_map(|(i, k)| k.clone().map(|k| (i, k)))
                                .unzip();
                            let (ri, rkeys): (Vec<usize>, Vec<JoinKey>) = rk
                                .iter()
                                .enumerate()
                                .filter_map(|(i, k)| k.clone().map(|k| (i, k)))
                                .unzip();
                            merge_join_eq(&lkeys, &rkeys)
                                .into_iter()
                                .map(|(l, r)| (li[l], ri[r]))
                                .collect()
                        }
                        CmpOp::Contains => {
                            return Err(Error::Unsupported("contains as join predicate".into()))
                        }
                        op => {
                            let mut pairs = Vec::new();
                            for (l, lkey) in lk.iter().enumerate() {
                                let Some(lkey) = lkey else { continue };
                                for (r, rkey) in rk.iter().enumerate() {
                                    let Some(rkey) = rkey else { continue };
                                    if cmp_keys(op, lkey, rkey) {
                                        pairs.push((l, r));
                                    }
                                }
                            }
                            pairs
                        }
                    }
                }
                JoinKeyKind::NodeId => {
                    if pred.op != CmpOp::Eq {
                        return Err(Error::Unsupported("node-id joins are equality joins".into()));
                    }
                    let lk = ident_keys(&left, pred.left)?;
                    let rk = ident_keys(&right, pred.right)?;
                    let mut by_key: std::collections::HashMap<IdentKey, Vec<usize>> =
                        std::collections::HashMap::with_capacity(rk.len());
                    for (i, k) in rk.iter().enumerate() {
                        by_key.entry(*k).or_default().push(i);
                    }
                    let mut pairs = Vec::new();
                    for (l, k) in lk.iter().enumerate() {
                        if let Some(rs) = by_key.get(k) {
                            pairs.extend(rs.iter().map(|&r| (l, r)));
                        }
                    }
                    pairs
                }
            };
            stats.join_steps += pairs.len() as u64;
            let mut m: Vec<Vec<usize>> = vec![Vec::new(); left.len()];
            for (l, r) in pairs {
                m[l].push(r);
            }
            for list in &mut m {
                list.sort_unstable();
            }
            m
        }
    };

    let join_root_tag = db.interner().intern("join_root");
    let mut out = Vec::new();
    for (li, ltree) in left.iter().enumerate() {
        let mut rights: Vec<usize> = matches[li].clone();
        if let Some(d) = spec.dedup_right_on {
            let mut seen: HashSet<Option<IdentKey>> = HashSet::new();
            rights.retain(|&r| {
                let key = effective_singleton(&right[r], d).map(|m| right[r].node(m).ident());
                seen.insert(key)
            });
        }
        let make_root = |tmp: &mut TempIdGen| {
            let mut t = ResultTree::with_root(RSource::Temp {
                id: tmp.fresh(),
                tag: join_root_tag,
                content: None,
            });
            t.assign_lcl(t.root(), spec.root_lcl);
            t
        };
        match spec.right_mspec {
            MSpec::One | MSpec::Opt => {
                if rights.is_empty() {
                    if spec.right_mspec == MSpec::Opt {
                        let mut t = make_root(tmp);
                        t.graft(ltree, t.root());
                        stats.trees_built += 1;
                        out.push(t);
                    }
                    continue;
                }
                for r in rights {
                    let mut t = make_root(tmp);
                    t.graft(ltree, t.root());
                    t.graft(&right[r], t.root());
                    stats.trees_built += 1;
                    out.push(t);
                }
            }
            MSpec::Plus | MSpec::Star => {
                if rights.is_empty() && spec.right_mspec == MSpec::Plus {
                    continue;
                }
                let mut t = make_root(tmp);
                t.graft(ltree, t.root());
                for r in rights {
                    t.graft(&right[r], t.root());
                }
                stats.trees_built += 1;
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// The node a join key/dedup reads for a class: the visible singleton when
/// one exists, otherwise the all-members singleton (hidden construct
/// children, see [`crate::ops::construct`]).
fn effective_singleton(t: &ResultTree, lcl: LclId) -> Option<crate::tree::RNodeId> {
    t.singleton(lcl).or_else(|| t.singleton_all(lcl))
}

fn ident_keys(trees: &[ResultTree], lcl: LclId) -> Result<Vec<IdentKey>> {
    trees
        .iter()
        .map(|t| {
            let m = effective_singleton(t, lcl)
                .ok_or(Error::NotSingleton { lcl, found: t.members_all(lcl).len() })?;
            Ok(t.node(m).ident())
        })
        .collect()
}

/// Per-tree join keys; a tree with no member of the class has no key (it
/// cannot match, but under `?`/`*` right specs it still survives the join).
/// More than one member is an error, per §2.3.
fn keys(db: &Database, trees: &[ResultTree], lcl: LclId) -> Result<Vec<Option<JoinKey>>> {
    trees
        .iter()
        .map(|t| match effective_singleton(t, lcl) {
            Some(m) => Ok(Some(JoinKey::from_text(&t.value(db, m)))),
            None if t.members_all(lcl).is_empty() => Ok(None),
            None => Err(Error::NotSingleton { lcl, found: t.members_all(lcl).len() }),
        })
        .collect()
}

fn cmp_keys(op: CmpOp, a: &JoinKey, b: &JoinKey) -> bool {
    let ord = a.order(b);
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Contains => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::{DocId, NodeId};

    /// Left trees carry class (1) with ids; right trees class (2).
    fn setup() -> (Database, Vec<ResultTree>, Vec<ResultTree>) {
        let mut db = Database::new();
        db.load_xml("j.xml", "<r><l>a</l><l>b</l><l>c</l><m>a</m><m>a</m><m>b</m></r>").unwrap();
        let lefts: Vec<ResultTree> = db
            .nodes_with_tag("l")
            .iter()
            .map(|&n| {
                let mut t = ResultTree::with_root(RSource::Base(n));
                t.assign_lcl(t.root(), LclId(1));
                t
            })
            .collect();
        let rights: Vec<ResultTree> = db
            .nodes_with_tag("m")
            .iter()
            .map(|&n| {
                let mut t = ResultTree::with_root(RSource::Base(n));
                t.assign_lcl(t.root(), LclId(2));
                t
            })
            .collect();
        (db, lefts, rights)
    }

    fn spec(mspec: MSpec) -> JoinSpec {
        JoinSpec {
            root_lcl: LclId(9),
            right_mspec: mspec,
            pred: Some(JoinPred::value(LclId(1), CmpOp::Eq, LclId(2))),
            dedup_right_on: None,
        }
    }

    #[test]
    fn inner_join_fans_out() {
        let (db, l, r) = setup();
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = join(&db, l, r, &spec(MSpec::One), &mut tmp, &mut s).unwrap();
        // a matches 2 rights, b matches 1, c matches 0 → 3 output trees.
        assert_eq!(out.len(), 3);
        for t in &out {
            assert_eq!(t.members(LclId(9)).len(), 1, "join_root is labelled");
            assert_eq!(t.node(t.root()).children.len(), 2);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn left_outer_join_keeps_matchless() {
        let (db, l, r) = setup();
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = join(&db, l, r, &spec(MSpec::Opt), &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 4);
        let lonely = out.iter().filter(|t| t.node(t.root()).children.len() == 1).count();
        assert_eq!(lonely, 1, "the key-c left survives alone");
    }

    #[test]
    fn nest_join_clusters_rights() {
        let (db, l, r) = setup();
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = join(&db, l, r, &spec(MSpec::Plus), &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 2, "only lefts with matches survive '+'");
        let mut sizes: Vec<usize> =
            out.iter().map(|t| t.node(t.root()).children.len() - 1).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn left_outer_nest_join_keeps_all_lefts() {
        let (db, l, r) = setup();
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = join(&db, l, r, &spec(MSpec::Star), &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn cartesian_product_when_no_predicate() {
        let (db, l, r) = setup();
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let cart = JoinSpec {
            root_lcl: LclId(9),
            right_mspec: MSpec::One,
            pred: None,
            dedup_right_on: None,
        };
        let out = join(&db, l, r, &cart, &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn output_preserves_left_document_order() {
        let (db, l, r) = setup();
        let expected: Vec<NodeId> = db.nodes_with_tag("l").to_vec();
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = join(&db, l, r, &spec(MSpec::Star), &mut tmp, &mut s).unwrap();
        let got: Vec<NodeId> = out
            .iter()
            .map(|t| {
                let first = t.node(t.root()).children[0];
                match t.node(first).source {
                    RSource::Base(id) => id,
                    _ => NodeId::new(DocId(9), 0),
                }
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn dedup_right_on_collapses_identical_rights() {
        let (db, l, r) = setup();
        // Duplicate the first right tree so key 'a' matches it twice with
        // identical (2)-identity.
        let mut rights = r;
        rights.push(rights[0].clone());
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let mut sp = spec(MSpec::Plus);
        sp.dedup_right_on = Some(LclId(2));
        let out = join(&db, l, rights, &sp, &mut tmp, &mut s).unwrap();
        let max_nested = out.iter().map(|t| t.node(t.root()).children.len() - 1).max().unwrap();
        assert_eq!(max_nested, 2, "the duplicated right is nested once");
    }

    #[test]
    fn non_singleton_key_is_an_error() {
        let (db, mut l, r) = setup();
        // Give the first left tree a second member of class (1).
        let extra = db.nodes_with_tag("m")[0];
        let root = l[0].root();
        let added = l[0].add_node(root, RSource::Base(extra));
        l[0].assign_lcl(added, LclId(1));
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        assert!(matches!(
            join(&db, l, r, &spec(MSpec::One), &mut tmp, &mut s),
            Err(Error::NotSingleton { .. })
        ));
    }

    #[test]
    fn inequality_join_via_nested_loop() {
        let mut db = Database::new();
        db.load_xml("n.xml", "<r><l>5</l><m>3</m><m>7</m></r>").unwrap();
        let mk = |tag: &str, lcl: LclId| -> Vec<ResultTree> {
            db.nodes_with_tag(tag)
                .iter()
                .map(|&n| {
                    let mut t = ResultTree::with_root(RSource::Base(n));
                    t.assign_lcl(t.root(), lcl);
                    t
                })
                .collect()
        };
        let l = mk("l", LclId(1));
        let r = mk("m", LclId(2));
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let sp = JoinSpec {
            root_lcl: LclId(9),
            right_mspec: MSpec::One,
            pred: Some(JoinPred::value(LclId(1), CmpOp::Gt, LclId(2))),
            dedup_right_on: None,
        };
        let out = join(&db, l, r, &sp, &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 1, "5 > 3 only");
    }
}
