//! Aggregate-Function — `AF[fname, LCL_a, newLCL](S)` (paper §2.3).
//!
//! Applies an aggregate over each tree's members of `LCL_a` and adds the
//! result as a temporary node, sibling of those members (or under the root
//! when the class is empty). Per the paper, an empty class yields `0` for
//! `count` and the flag `empty` for every other function.

use crate::logical_class::LclId;
use crate::stats::ExecStats;
use crate::tree::{RSource, ResultTree, TempIdGen};
use xmldb::Database;
use xquery::AggFunc;

/// Runs the aggregate, tagging the created node with `new_lcl`.
pub fn aggregate(
    db: &Database,
    inputs: Vec<ResultTree>,
    func: AggFunc,
    over: LclId,
    new_lcl: LclId,
    tmp: &mut TempIdGen,
    stats: &mut ExecStats,
) -> Vec<ResultTree> {
    let tag = db.interner().intern(func.name());
    inputs
        .into_iter()
        .map(|mut t| {
            let members = t.members(over);
            let content = match func {
                AggFunc::Count => format_num(members.len() as f64),
                _ => {
                    let nums: Vec<f64> = members.iter().filter_map(|&m| t.num(db, m)).collect();
                    if nums.is_empty() {
                        "empty".to_string()
                    } else {
                        let v = match func {
                            AggFunc::Sum => nums.iter().sum(),
                            AggFunc::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
                            AggFunc::Min => nums.iter().copied().fold(f64::INFINITY, f64::min),
                            AggFunc::Max => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                            AggFunc::Count => unreachable!(),
                        };
                        format_num(v)
                    }
                }
            };
            // Sibling of the members: attach under the first member's
            // parent; with no members, under the tree root.
            let parent = members.first().and_then(|&m| t.node(m).parent).unwrap_or(t.root());
            let node = t.add_node(
                parent,
                RSource::Temp { id: tmp.fresh(), tag, content: Some(content.into()) },
            );
            t.assign_lcl(node, new_lcl);
            stats.trees_built += 1;
            t
        })
        .collect()
}

/// Formats without a trailing `.0` for integral values (counts, money sums).
pub fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::NodeId;

    fn setup(values: &[&str]) -> (Database, ResultTree) {
        let mut db = Database::new();
        let body: String = values.iter().map(|v| format!("<x>{v}</x>")).collect();
        db.load_xml("a.xml", &format!("<r>{body}</r>")).unwrap();
        let root: NodeId = db.nodes_with_tag("r")[0];
        let mut t = ResultTree::with_root(RSource::Base(root));
        for &x in db.nodes_with_tag("x") {
            let id = t.add_node(t.root(), RSource::Base(x));
            t.assign_lcl(id, LclId(1));
        }
        (db, t)
    }

    fn run(db: &Database, t: ResultTree, f: AggFunc) -> String {
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = aggregate(db, vec![t], f, LclId(1), LclId(2), &mut tmp, &mut s);
        let agg = out[0].singleton(LclId(2)).unwrap();
        out[0].value(db, agg)
    }

    #[test]
    fn count_sum_avg_min_max() {
        let (db, t) = setup(&["10", "20", "30"]);
        assert_eq!(run(&db, t.clone(), AggFunc::Count), "3");
        assert_eq!(run(&db, t.clone(), AggFunc::Sum), "60");
        assert_eq!(run(&db, t.clone(), AggFunc::Avg), "20");
        assert_eq!(run(&db, t.clone(), AggFunc::Min), "10");
        assert_eq!(run(&db, t, AggFunc::Max), "30");
    }

    #[test]
    fn empty_class_yields_zero_count_and_empty_flag() {
        let (db, _) = setup(&["1"]);
        let root = db.nodes_with_tag("r")[0];
        let t = ResultTree::with_root(RSource::Base(root));
        assert_eq!(run(&db, t.clone(), AggFunc::Count), "0");
        assert_eq!(run(&db, t, AggFunc::Sum), "empty");
    }

    #[test]
    fn aggregate_node_is_sibling_of_members() {
        let (db, t) = setup(&["1", "2"]);
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = aggregate(&db, vec![t], AggFunc::Count, LclId(1), LclId(2), &mut tmp, &mut s);
        let tree = &out[0];
        let agg = tree.singleton(LclId(2)).unwrap();
        let member = tree.members(LclId(1))[0];
        assert_eq!(tree.node(agg).parent, tree.node(member).parent);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn non_numeric_members_are_ignored_by_numeric_aggs() {
        let (db, t) = setup(&["5", "abc", "7"]);
        assert_eq!(run(&db, t.clone(), AggFunc::Sum), "12");
        assert_eq!(run(&db, t, AggFunc::Count), "3", "count counts nodes, not numbers");
    }

    #[test]
    fn fractional_formatting() {
        assert_eq!(format_num(2.5), "2.5");
        assert_eq!(format_num(4.0), "4");
    }
}
