//! Project — `P[nl](S)` (paper §2.3).
//!
//! Retains only the nodes belonging to the listed classes; the input tree's
//! root is always retained so the output stays a tree (the paper retains it
//! "if the output is not a tree"). Kept nodes re-attach to their nearest
//! kept ancestor. Shadowed members of kept classes are retained — shadowing
//! hides nodes from operations but deliberately keeps them in intermediate
//! results (§4.3).
//!
//! Two node categories are exempt from dropping:
//!
//! * children of kept *temporary* nodes — constructed content (attribute and
//!   text temporaries, nested construct output) is integral to its element,
//!   unlike the matched children of a base node, whose stored subtree is
//!   implied anyway;
//! * nothing else — matched (classed) children of base nodes not in the
//!   keep list are dropped exactly as in Figure 7's Project 6.

use crate::logical_class::LclId;
use crate::stats::ExecStats;
use crate::tree::{RNodeId, RSource, ResultTree};

/// Runs the projection.
pub fn project(inputs: Vec<ResultTree>, keep: &[LclId], stats: &mut ExecStats) -> Vec<ResultTree> {
    let out: Vec<ResultTree> = inputs
        .into_iter()
        .map(|t| {
            let mut kept = vec![false; t.len()];
            mark(&t, t.root(), false, keep, &mut kept);
            t.rebuild(|id| kept[id.0 as usize])
        })
        .collect();
    stats.trees_built += out.len() as u64;
    out
}

fn mark(t: &ResultTree, at: RNodeId, parent_kept_temp: bool, keep: &[LclId], kept: &mut [bool]) {
    let n = t.node(at);
    let is_kept = parent_kept_temp || n.lcls.iter().any(|l| keep.contains(l));
    kept[at.0 as usize] = is_kept;
    let descend_kept_temp = is_kept && matches!(n.source, RSource::Temp { .. });
    for &c in &n.children {
        mark(t, c, descend_kept_temp, keep, kept);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RSource;
    use xmldb::{DocId, NodeId};

    fn base(pre: u32) -> RSource {
        RSource::Base(NodeId::new(DocId(0), pre))
    }

    #[test]
    fn project_keeps_only_listed_classes() {
        let mut t = ResultTree::with_root(base(0));
        let a = t.add_node(t.root(), base(1));
        let b = t.add_node(a, base(2));
        let c = t.add_node(t.root(), base(3));
        t.assign_lcl(a, LclId(1));
        t.assign_lcl(b, LclId(2));
        t.assign_lcl(c, LclId(3));
        let mut s = ExecStats::new();
        let out = project(vec![t], &[LclId(2), LclId(3)], &mut s);
        assert_eq!(out.len(), 1);
        let p = &out[0];
        p.check_invariants().unwrap();
        // Root + b (reparented to root) + c.
        assert_eq!(p.len(), 3);
        assert!(p.members(LclId(1)).is_empty());
        assert_eq!(p.members(LclId(2)).len(), 1);
        assert_eq!(p.members(LclId(3)).len(), 1);
        // b now hangs off the root.
        let b_new = p.members(LclId(2))[0];
        assert_eq!(p.node(b_new).parent, Some(p.root()));
    }

    #[test]
    fn shadowed_members_survive_projection() {
        let mut t = ResultTree::with_root(base(0));
        let a = t.add_node(t.root(), base(1));
        t.assign_lcl(a, LclId(1));
        t.set_shadowed(a, true);
        let mut s = ExecStats::new();
        let out = project(vec![t], &[LclId(1)], &mut s);
        assert_eq!(out[0].len(), 2);
        assert!(out[0].is_shadowed(out[0].members_all(LclId(1))[0]));
    }

    #[test]
    fn empty_keep_list_leaves_only_roots() {
        let mut t = ResultTree::with_root(base(0));
        t.add_node(t.root(), base(1));
        let mut s = ExecStats::new();
        let out = project(vec![t], &[], &mut s);
        assert_eq!(out[0].len(), 1);
    }
}
