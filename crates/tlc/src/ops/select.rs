//! Select — `S[apt](S)` (paper §2.3).
//!
//! Performs an annotated-pattern-tree match. Anchored at a document root it
//! reads base data; anchored at a logical class it *extends* the input trees
//! (pattern-tree reuse, §4.1 — the mechanism behind Selects 8/9 of Figure 7).

use crate::error::Result;
use crate::exec::ExecCtx;
use crate::matching::{match_apt_database, match_apt_extend};
use crate::pattern::{Apt, AptRoot};
use crate::tree::ResultTree;
use xmldb::Database;

/// Runs the select. For document-rooted APTs `inputs` must be empty (the
/// operator is a leaf); for class-rooted APTs it extends `inputs`. Takes
/// the whole execution context (not just counters) so matching can honor
/// the deadline mid-match via [`ExecCtx::tick`].
pub fn select(
    db: &Database,
    apt: &Apt,
    inputs: Vec<ResultTree>,
    ctx: &mut ExecCtx,
) -> Result<Vec<ResultTree>> {
    match &apt.root {
        AptRoot::Document { .. } => {
            debug_assert!(inputs.is_empty(), "document select is a leaf operator");
            // The empty inputs vec may still carry capacity from an upstream
            // operator; park it so the buffer keeps circulating.
            ctx.free_trees(inputs);
            match_apt_database(db, apt, ctx)
        }
        AptRoot::Lcl(_) => match_apt_extend(db, apt, inputs, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical_class::LclId;
    use crate::pattern::MSpec;
    use xmldb::AxisRel;

    #[test]
    fn select_routes_by_anchor() {
        let mut db = Database::new();
        db.load_xml("t.xml", "<r><a><b/></a><a/></r>").unwrap();
        let tag_a = db.interner().lookup("a").unwrap();
        let tag_b = db.interner().lookup("b").unwrap();
        let mut ctx = ExecCtx::new();

        let mut apt = Apt::for_document("t.xml", LclId(1));
        apt.add(None, AxisRel::Descendant, MSpec::One, tag_a, None, LclId(2));
        let base = select(&db, &apt, Vec::new(), &mut ctx).unwrap();
        assert_eq!(base.len(), 2);

        let mut ext = Apt::extending(LclId(2));
        ext.add(None, AxisRel::Child, MSpec::Star, tag_b, None, LclId(3));
        let extended = select(&db, &ext, base, &mut ctx).unwrap();
        assert_eq!(extended.len(), 2);
        let counts: Vec<usize> = extended.iter().map(|t| t.members(LclId(3)).len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 1);
    }
}
