//! Filter — `F[LCL_f, p, m](S)` (paper §2.3).
//!
//! Keeps the input trees whose class members satisfy the predicate under the
//! given iteration mode:
//!
//! * **Every (E)** — default: the predicate must hold at *all* members; an
//!   empty class passes (footnote 2 of the paper).
//! * **ALO** — at least one member satisfies the predicate (existential).
//! * **EX** — exactly one member satisfies it.

use crate::logical_class::LclId;
use crate::pattern::ContentPred;
use crate::stats::ExecStats;
use crate::tree::ResultTree;
use xmldb::Database;
use xquery::CmpOp;

/// Iteration mode over the class members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterMode {
    /// Universal quantification (paper default). Empty class ⇒ pass.
    Every,
    /// "At least one" — existential quantification.
    Alo,
    /// "Exactly one" member satisfies the predicate.
    Ex,
}

/// The filter predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterPred {
    /// Compare the member's value against a literal.
    Content(ContentPred),
    /// Compare the member's value against the value of another class's
    /// singleton member within the same tree (used for within-tree value
    /// joins).
    CmpLcl {
        /// Comparison operator.
        op: CmpOp,
        /// The other class; must be a singleton in each tree.
        other: LclId,
    },
}

/// Runs the filter.
pub fn filter(
    db: &Database,
    inputs: Vec<ResultTree>,
    lcl: LclId,
    pred: &FilterPred,
    mode: FilterMode,
    _stats: &mut ExecStats,
) -> Vec<ResultTree> {
    inputs
        .into_iter()
        .filter(|t| {
            let members = t.members(lcl);
            let sat = members.iter().filter(|&&m| eval(db, t, m, pred)).count();
            match mode {
                FilterMode::Every => sat == members.len(),
                FilterMode::Alo => sat >= 1,
                FilterMode::Ex => sat == 1,
            }
        })
        .collect()
}

fn eval(db: &Database, tree: &ResultTree, member: crate::tree::RNodeId, pred: &FilterPred) -> bool {
    let value = tree.value(db, member);
    match pred {
        FilterPred::Content(p) => p.eval_str(&value),
        FilterPred::CmpLcl { op, other } => {
            let Some(o) = tree.singleton_all(*other) else {
                return false;
            };
            let other_value = tree.value(db, o);
            let p = crate::pattern::ContentPred {
                op: *op,
                value: match other_value.trim().parse::<f64>() {
                    Ok(n) if value.trim().parse::<f64>().is_ok() => {
                        crate::pattern::PredValue::Num(n)
                    }
                    _ => crate::pattern::PredValue::Str(other_value.as_str().into()),
                },
            };
            p.eval_str(&value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{ContentPred, PredValue};
    use crate::tree::{RSource, ResultTree};
    use xmldb::{DocId, NodeId};

    fn tree_with_ages(db_doc: &Database, ages: &[u32]) -> ResultTree {
        // Build a tree whose class (1) members are the age elements of the doc.
        let mut t = ResultTree::with_root(RSource::Base(NodeId::new(DocId(0), 0)));
        let all_ages = db_doc.nodes_with_tag("age");
        for (i, _) in ages.iter().enumerate() {
            let id = t.add_node(t.root(), RSource::Base(all_ages[i]));
            t.assign_lcl(id, LclId(1));
        }
        t
    }

    fn db(ages: &[u32]) -> Database {
        let mut db = Database::new();
        let body: String = ages.iter().map(|a| format!("<age>{a}</age>")).collect();
        db.load_xml("t.xml", &format!("<r>{body}</r>")).unwrap();
        db
    }

    fn gt(n: f64) -> FilterPred {
        FilterPred::Content(ContentPred { op: CmpOp::Gt, value: PredValue::Num(n) })
    }

    #[test]
    fn every_mode_requires_all() {
        let d = db(&[30, 40]);
        let t = tree_with_ages(&d, &[30, 40]);
        let mut s = ExecStats::new();
        assert_eq!(
            filter(&d, vec![t.clone()], LclId(1), &gt(25.0), FilterMode::Every, &mut s).len(),
            1
        );
        assert_eq!(filter(&d, vec![t], LclId(1), &gt(35.0), FilterMode::Every, &mut s).len(), 0);
    }

    #[test]
    fn every_mode_passes_empty_class() {
        let d = db(&[30]);
        let t = ResultTree::with_root(RSource::Base(NodeId::new(DocId(0), 0)));
        let mut s = ExecStats::new();
        assert_eq!(filter(&d, vec![t], LclId(1), &gt(99.0), FilterMode::Every, &mut s).len(), 1);
    }

    #[test]
    fn alo_mode_is_existential() {
        let d = db(&[10, 40]);
        let t = tree_with_ages(&d, &[10, 40]);
        let mut s = ExecStats::new();
        assert_eq!(
            filter(&d, vec![t.clone()], LclId(1), &gt(35.0), FilterMode::Alo, &mut s).len(),
            1
        );
        assert_eq!(filter(&d, vec![t], LclId(1), &gt(50.0), FilterMode::Alo, &mut s).len(), 0);
    }

    #[test]
    fn ex_mode_requires_exactly_one() {
        let d = db(&[10, 40, 50]);
        let t = tree_with_ages(&d, &[10, 40, 50]);
        let mut s = ExecStats::new();
        assert_eq!(
            filter(&d, vec![t.clone()], LclId(1), &gt(45.0), FilterMode::Ex, &mut s).len(),
            1
        );
        assert_eq!(
            filter(&d, vec![t.clone()], LclId(1), &gt(35.0), FilterMode::Ex, &mut s).len(),
            0
        );
        assert_eq!(filter(&d, vec![t], LclId(1), &gt(99.0), FilterMode::Ex, &mut s).len(), 0);
    }

    #[test]
    fn cmp_lcl_compares_two_classes() {
        let d = db(&[10, 40]);
        let mut t = tree_with_ages(&d, &[10, 40]);
        // class (2) singleton = the second age (40).
        let m = t.members(LclId(1))[1];
        t.assign_lcl(m, LclId(2));
        let pred = FilterPred::CmpLcl { op: CmpOp::Lt, other: LclId(2) };
        let mut s = ExecStats::new();
        // Every member of (1) < value of (2)? 10 < 40 but !(40 < 40) → fails.
        assert_eq!(
            filter(&d, vec![t.clone()], LclId(1), &pred, FilterMode::Every, &mut s).len(),
            0
        );
        assert_eq!(filter(&d, vec![t], LclId(1), &pred, FilterMode::Alo, &mut s).len(), 1);
    }

    #[test]
    fn shadowed_members_are_invisible() {
        let d = db(&[10, 40]);
        let mut t = tree_with_ages(&d, &[10, 40]);
        let low = t.members(LclId(1))[0];
        t.set_shadowed(low, true);
        let mut s = ExecStats::new();
        // With the 10 shadowed, EVERY > 25 passes.
        assert_eq!(filter(&d, vec![t], LclId(1), &gt(25.0), FilterMode::Every, &mut s).len(), 1);
    }
}
