//! Construct — `C[c](S)` (paper §2.3).
//!
//! Takes an annotated construct-pattern tree: an APT-like specification with
//! "facilities for tagging, renaming, and arbitrary tree assembly". Our
//! specification mirrors the boxes in Figures 7/8: constructed elements with
//! optional class labels, attribute values drawn from class text, embedded
//! references to classes of the input tree (whole subtrees), and literal
//! text.
//!
//! Hidden references (`hidden: true`) implement the Figure 8 detail where
//! nodes needed by a *later* operator (the deferred join value (9), the
//! dedup key (5)) must "survive the project, construct etc." — they are
//! copied into the constructed tree but shadowed, so they never appear in
//! serialized output yet remain readable through the `_all` accessors.

use crate::error::Result;
use crate::logical_class::LclId;
use crate::stats::ExecStats;
use crate::tree::{RNodeId, RSource, ResultTree, TempIdGen};
use xmldb::Database;

/// Value of a constructed attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstructValue {
    /// Concatenated text of a class's members (e.g. `(12).text()`).
    LclText(LclId),
    /// A literal string.
    Literal(String),
}

/// One item of a construct-pattern tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstructItem {
    /// `<tag attr=...> children </tag>` — a fresh temporary element.
    Element {
        /// The constructed tag name.
        tag: String,
        /// Class label for the constructed node, when later operators need
        /// to reference it (e.g. `myquan` (15) feeding Filter 10 in Fig. 8).
        lcl: Option<LclId>,
        /// Attributes.
        attrs: Vec<(String, ConstructValue)>,
        /// Content items.
        children: Vec<ConstructItem>,
    },
    /// Insert the member subtrees of a class, keeping their labels.
    LclRef {
        /// The referenced class.
        lcl: LclId,
        /// Copy as shadowed (invisible in output, readable by later joins).
        hidden: bool,
    },
    /// Insert the concatenated text value of a class as a text node.
    LclText(LclId),
    /// Literal text content.
    Text(String),
}

/// Runs the construct. Each input tree produces one output tree per
/// top-level root the specification generates (a single `Element` spec gives
/// exactly one output per input; a bare class reference gives one output per
/// member).
pub fn construct(
    db: &Database,
    inputs: Vec<ResultTree>,
    spec: &[ConstructItem],
    tmp: &mut TempIdGen,
    stats: &mut ExecStats,
) -> Result<Vec<ResultTree>> {
    let mut out = Vec::with_capacity(inputs.len());
    for t in &inputs {
        for item in spec {
            build_roots(db, t, item, tmp, &mut out)?;
        }
    }
    stats.trees_built += out.len() as u64;
    Ok(out)
}

/// Builds top-level output trees for one spec item.
fn build_roots(
    db: &Database,
    src: &ResultTree,
    item: &ConstructItem,
    tmp: &mut TempIdGen,
    out: &mut Vec<ResultTree>,
) -> Result<()> {
    match item {
        ConstructItem::Element { .. } | ConstructItem::Text(_) | ConstructItem::LclText(_) => {
            // Single synthetic root.
            let mut tree = ResultTree::with_root(RSource::Temp {
                id: tmp.fresh(),
                tag: db.interner().doc_tag(), // placeholder; replaced below
                content: None,
            });
            // Rebuild properly: create the item under a scratch root, then
            // re-root. Simpler: build into a scratch tree and extract.
            let root = tree.root();
            build_into(db, src, item, tmp, &mut tree, root)?;
            // The scratch root has exactly one child: promote it.
            let child = tree.node(root).children[0];
            out.push(extract_subtree(&tree, child));
            Ok(())
        }
        ConstructItem::LclRef { lcl, hidden } => {
            let members = if *hidden { src.members_all(*lcl).to_vec() } else { src.members(*lcl) };
            for m in members {
                out.push(extract_subtree(src, m));
            }
            Ok(())
        }
    }
}

/// Copies the subtree rooted at `at` into a fresh tree.
fn extract_subtree(src: &ResultTree, at: RNodeId) -> ResultTree {
    let mut dst = ResultTree::with_root(src.node(at).source.clone());
    for &lcl in &src.node(at).lcls {
        dst.assign_lcl(dst.root(), lcl);
    }
    let root = dst.root();
    copy_children(src, at, &mut dst, root);
    dst
}

fn copy_children(src: &ResultTree, from: RNodeId, dst: &mut ResultTree, to: RNodeId) {
    for &c in &src.node(from).children {
        let copy = dst.add_node(to, src.node(c).source.clone());
        if src.node(c).shadowed {
            dst.set_shadowed(copy, true);
        }
        for &lcl in &src.node(c).lcls {
            dst.assign_lcl(copy, lcl);
        }
        copy_children(src, c, dst, copy);
    }
}

/// Builds a spec item as a child of `parent` in `dst`.
fn build_into(
    db: &Database,
    src: &ResultTree,
    item: &ConstructItem,
    tmp: &mut TempIdGen,
    dst: &mut ResultTree,
    parent: RNodeId,
) -> Result<()> {
    match item {
        ConstructItem::Element { tag, lcl, attrs, children } => {
            let tag_id = db.interner().intern(tag);
            let el =
                dst.add_node(parent, RSource::Temp { id: tmp.fresh(), tag: tag_id, content: None });
            if let Some(l) = lcl {
                dst.assign_lcl(el, *l);
            }
            for (name, value) in attrs {
                let atag = db.interner().intern(&format!("@{name}"));
                let text = match value {
                    ConstructValue::Literal(s) => s.clone(),
                    ConstructValue::LclText(l) => class_text(db, src, *l),
                };
                dst.add_node(
                    el,
                    RSource::Temp { id: tmp.fresh(), tag: atag, content: Some(text.into()) },
                );
            }
            for c in children {
                build_into(db, src, c, tmp, dst, el)?;
            }
            Ok(())
        }
        ConstructItem::LclRef { lcl, hidden } => {
            let members = if *hidden { src.members_all(*lcl).to_vec() } else { src.members(*lcl) };
            for m in members {
                let copy = dst.add_node(parent, src.node(m).source.clone());
                if *hidden {
                    dst.set_shadowed(copy, true);
                }
                for &l in &src.node(m).lcls {
                    dst.assign_lcl(copy, l);
                }
                // A hidden survivor only needs its identity and value (join
                // keys, dedup); copying its matched subtree would re-register
                // descendant classes and duplicate them in the output.
                if !*hidden {
                    copy_children(src, m, dst, copy);
                }
            }
            Ok(())
        }
        ConstructItem::LclText(lcl) => {
            let text = class_text(db, src, *lcl);
            dst.add_node(
                parent,
                RSource::Temp {
                    id: tmp.fresh(),
                    tag: db.interner().text_tag(),
                    content: Some(text.into()),
                },
            );
            Ok(())
        }
        ConstructItem::Text(s) => {
            dst.add_node(
                parent,
                RSource::Temp {
                    id: tmp.fresh(),
                    tag: db.interner().text_tag(),
                    content: Some(s.clone().into()),
                },
            );
            Ok(())
        }
    }
}

fn class_text(db: &Database, src: &ResultTree, lcl: LclId) -> String {
    src.members(lcl).iter().map(|&m| src.value(db, m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Database, ResultTree) {
        let mut db = Database::new();
        db.load_xml("c.xml", "<r><name>Ann</name><b>x</b><b>y</b></r>").unwrap();
        let mut t = ResultTree::with_root(RSource::Base(db.nodes_with_tag("r")[0]));
        let n = db.nodes_with_tag("name")[0];
        let root = t.root();
        let name = t.add_node(root, RSource::Base(n));
        t.assign_lcl(name, LclId(12));
        for &b in db.nodes_with_tag("b") {
            let id = t.add_node(root, RSource::Base(b));
            t.assign_lcl(id, LclId(13));
        }
        (db, t)
    }

    #[test]
    fn q1_style_construct() {
        let (db, t) = setup();
        // <person name={(12).text()}> (13) </person> — the Figure 7 box 10.
        let spec = vec![ConstructItem::Element {
            tag: "person".into(),
            lcl: Some(LclId(14)),
            attrs: vec![("name".into(), ConstructValue::LclText(LclId(12)))],
            children: vec![ConstructItem::LclRef { lcl: LclId(13), hidden: false }],
        }];
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = construct(&db, vec![t], &spec, &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 1);
        let tree = &out[0];
        tree.check_invariants().unwrap();
        assert!(tree.singleton(LclId(14)).is_some(), "constructed element is labelled");
        assert_eq!(tree.members(LclId(13)).len(), 2, "referenced class labels survive");
        // name attribute value resolved.
        let root = tree.root();
        let attr = tree.node(root).children[0];
        let RSource::Temp { content, .. } = &tree.node(attr).source else { panic!() };
        assert_eq!(content.as_deref(), Some("Ann"));
    }

    #[test]
    fn bare_class_reference_fans_out() {
        let (db, t) = setup();
        let spec = vec![ConstructItem::LclRef { lcl: LclId(13), hidden: false }];
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = construct(&db, vec![t], &spec, &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 2, "one output tree per member");
        assert!(out.iter().all(|t| t.members(LclId(13)).len() == 1));
    }

    #[test]
    fn hidden_refs_are_shadowed_copies() {
        let (db, t) = setup();
        let spec = vec![ConstructItem::Element {
            tag: "wrap".into(),
            lcl: None,
            attrs: vec![],
            children: vec![ConstructItem::LclRef { lcl: LclId(12), hidden: true }],
        }];
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = construct(&db, vec![t], &spec, &mut tmp, &mut s).unwrap();
        let tree = &out[0];
        assert!(tree.members(LclId(12)).is_empty(), "hidden from visible accessors");
        assert_eq!(tree.members_all(LclId(12)).len(), 1, "readable via _all");
    }

    #[test]
    fn literal_text_and_class_text() {
        let (db, t) = setup();
        let spec = vec![ConstructItem::Element {
            tag: "out".into(),
            lcl: None,
            attrs: vec![],
            children: vec![ConstructItem::Text("hello ".into()), ConstructItem::LclText(LclId(12))],
        }];
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = construct(&db, vec![t], &spec, &mut tmp, &mut s).unwrap();
        assert_eq!(out[0].value(&db, out[0].root()), "hello Ann");
    }

    #[test]
    fn empty_class_reference_constructs_empty_element() {
        let (db, t) = setup();
        let spec = vec![ConstructItem::Element {
            tag: "empty".into(),
            lcl: None,
            attrs: vec![],
            children: vec![ConstructItem::LclRef { lcl: LclId(99), hidden: false }],
        }];
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = construct(&db, vec![t], &spec, &mut tmp, &mut s).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].node(out[0].root()).children.len(), 0);
    }

    #[test]
    fn nested_elements() {
        let (db, t) = setup();
        let spec = vec![ConstructItem::Element {
            tag: "a".into(),
            lcl: None,
            attrs: vec![],
            children: vec![ConstructItem::Element {
                tag: "b".into(),
                lcl: Some(LclId(20)),
                attrs: vec![],
                children: vec![ConstructItem::LclText(LclId(12))],
            }],
        }];
        let mut tmp = TempIdGen::new();
        let mut s = ExecStats::new();
        let out = construct(&db, vec![t], &spec, &mut tmp, &mut s).unwrap();
        let tree = &out[0];
        let b = tree.singleton(LclId(20)).unwrap();
        assert_eq!(tree.value(&db, b), "Ann");
    }
}
