//! Structural joins and nest-structural-joins (paper §5.2, Definition 8).
//!
//! All functions take node lists **sorted in document order** (which the tag
//! and value indexes guarantee) and exploit the interval encoding for
//! merge-style evaluation. The *nest* variants differ from the regular ones
//! exactly as Figure 14 shows: instead of one output pair per matching
//! (ancestor, descendant) combination, each ancestor produces a single
//! output with all its matching descendants clustered — this is the physical
//! primitive behind `+`/`*` pattern edges, replacing the grouping procedure
//! TAX and GTP must run.

use xmldb::{AxisRel, Database, NodeId};

/// An interval-encoded node: everything a structural join needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct INode {
    /// The node id (document + pre rank).
    pub id: NodeId,
    /// Pre rank of the last descendant.
    pub end: u32,
    /// Depth.
    pub level: u16,
}

impl INode {
    /// Loads interval data from the store.
    pub fn of(db: &Database, id: NodeId) -> INode {
        let n = db.node(id);
        INode { id, end: n.end(), level: n.level() }
    }

    /// Does `self` stand in `axis` relation (as ancestor/parent) to `d`?
    #[inline]
    pub fn relates(&self, d: &INode, axis: AxisRel) -> bool {
        self.id.doc == d.id.doc && axis.holds(self.id.pre, self.end, self.level, d.id.pre, d.level)
    }
}

/// Loads interval views for a sorted id list.
pub fn inodes(db: &Database, ids: &[NodeId]) -> Vec<INode> {
    ids.iter().map(|&id| INode::of(db, id)).collect()
}

/// Returns the sub-slice of a document-ordered posting list that falls
/// strictly inside the interval `(anc.pre, anc.end]` of the same document —
/// the candidate descendants of `anc`. This is the index probe the pattern
/// matcher runs for every (bound node, pattern child) pair.
pub fn candidates_in<'a>(postings: &'a [NodeId], anc: &INode) -> &'a [NodeId] {
    let lo = postings.partition_point(|n| *n <= anc.id);
    let hi = postings.partition_point(|n| (n.doc, n.pre) <= (anc.id.doc, anc.end));
    &postings[lo..hi]
}

/// Regular structural join: one output pair per matching (ancestor,
/// descendant) combination. Returns index pairs into the inputs, in
/// (ancestor, descendant) document order.
pub fn structural_join(anc: &[INode], desc: &[INode], axis: AxisRel) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (ai, a) in anc.iter().enumerate() {
        // Descendants are sorted; skip those entirely before this ancestor.
        while start < desc.len()
            && (desc[start].id.doc < a.id.doc
                || (desc[start].id.doc == a.id.doc && desc[start].id.pre <= a.id.pre))
        {
            start += 1;
        }
        // Ancestors may nest, so we cannot advance `start` permanently past
        // a match; scan from `start` while inside the interval.
        let mut i = start;
        while i < desc.len() && desc[i].id.doc == a.id.doc && desc[i].id.pre <= a.end {
            if a.relates(&desc[i], axis) {
                out.push((ai, i));
            }
            i += 1;
        }
    }
    out
}

/// Nest-structural-join (Definition 8): one output per ancestor with all its
/// matching descendants clustered. Ancestors without matches produce nothing.
pub fn nest_structural_join(
    anc: &[INode],
    desc: &[INode],
    axis: AxisRel,
) -> Vec<(usize, Vec<usize>)> {
    left_outer_nest_structural_join(anc, desc, axis)
        .into_iter()
        .filter(|(_, ds)| !ds.is_empty())
        .collect()
}

/// Left-outer-nest-structural-join: like the nest join, but ancestors
/// without matches still appear (with an empty cluster) — the physical
/// operator for `*` edges.
pub fn left_outer_nest_structural_join(
    anc: &[INode],
    desc: &[INode],
    axis: AxisRel,
) -> Vec<(usize, Vec<usize>)> {
    let mut out = Vec::with_capacity(anc.len());
    let mut start = 0usize;
    for (ai, a) in anc.iter().enumerate() {
        while start < desc.len()
            && (desc[start].id.doc < a.id.doc
                || (desc[start].id.doc == a.id.doc && desc[start].id.pre <= a.id.pre))
        {
            start += 1;
        }
        let mut group = Vec::new();
        let mut i = start;
        while i < desc.len() && desc[i].id.doc == a.id.doc && desc[i].id.pre <= a.end {
            if a.relates(&desc[i], axis) {
                group.push(i);
            }
            i += 1;
        }
        out.push((ai, group));
    }
    out
}

/// Left-outer structural join: one output per (ancestor, descendant) pair,
/// plus one `(ancestor, None)` output for matchless ancestors — the physical
/// operator for `?` edges.
pub fn left_outer_structural_join(
    anc: &[INode],
    desc: &[INode],
    axis: AxisRel,
) -> Vec<(usize, Option<usize>)> {
    let mut out = Vec::new();
    for (ai, group) in left_outer_nest_structural_join(anc, desc, axis) {
        if group.is_empty() {
            out.push((ai, None));
        } else {
            out.extend(group.into_iter().map(|d| (ai, Some(d))));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::Database;

    /// Builds the Figure 14 sample data: `<A1><D1/><D2/><E1/><B1/></A1>`.
    fn fig14_db() -> Database {
        let mut db = Database::new();
        db.load_xml("f.xml", "<A><D/><D/><E/><B/></A>").unwrap();
        db
    }

    #[test]
    fn figure_14_structural_vs_nest() {
        let db = fig14_db();
        let a = inodes(&db, db.nodes_with_tag("A"));
        let d = inodes(&db, db.nodes_with_tag("D"));
        // Regular join: one output tree per pair — (A1,D1), (A1,D2).
        let pairs = structural_join(&a, &d, AxisRel::Child);
        assert_eq!(pairs, vec![(0, 0), (0, 1)]);
        // Nest join: a single output with D1, D2 clustered under A1.
        let nested = nest_structural_join(&a, &d, AxisRel::Child);
        assert_eq!(nested, vec![(0, vec![0, 1])]);
    }

    #[test]
    fn outer_variants_keep_matchless_ancestors() {
        let db = fig14_db();
        let a = inodes(&db, db.nodes_with_tag("A"));
        let zebra: Vec<INode> = Vec::new();
        assert_eq!(nest_structural_join(&a, &zebra, AxisRel::Child), vec![]);
        assert_eq!(left_outer_nest_structural_join(&a, &zebra, AxisRel::Child), vec![(0, vec![])]);
        assert_eq!(left_outer_structural_join(&a, &zebra, AxisRel::Child), vec![(0, None)]);
        let d = inodes(&db, db.nodes_with_tag("D"));
        assert_eq!(
            left_outer_structural_join(&a, &d, AxisRel::Child),
            vec![(0, Some(0)), (0, Some(1))]
        );
    }

    #[test]
    fn child_vs_descendant_axis() {
        let mut db = Database::new();
        db.load_xml("n.xml", "<a><b><c/></b><c/></a>").unwrap();
        let a = inodes(&db, db.nodes_with_tag("a"));
        let c = inodes(&db, db.nodes_with_tag("c"));
        assert_eq!(structural_join(&a, &c, AxisRel::Descendant).len(), 2);
        assert_eq!(structural_join(&a, &c, AxisRel::Child).len(), 1);
    }

    #[test]
    fn nested_ancestors_all_match() {
        // Ancestors can nest: both `s` elements contain the inner `x`.
        let mut db = Database::new();
        db.load_xml("n.xml", "<s><s><x/></s></s>").unwrap();
        let s = inodes(&db, db.nodes_with_tag("s"));
        let x = inodes(&db, db.nodes_with_tag("x"));
        let pairs = structural_join(&s, &x, AxisRel::Descendant);
        assert_eq!(pairs.len(), 2, "both nested ancestors must match");
    }

    #[test]
    fn candidates_in_is_an_interval_slice() {
        let mut db = Database::new();
        db.load_xml("n.xml", "<r><p><k/><k/></p><p><k/></p></r>").unwrap();
        let p = inodes(&db, db.nodes_with_tag("p"));
        let k = db.nodes_with_tag("k");
        assert_eq!(candidates_in(k, &p[0]).len(), 2);
        assert_eq!(candidates_in(k, &p[1]).len(), 1);
        let r = inodes(&db, db.nodes_with_tag("r"));
        assert_eq!(candidates_in(k, &r[0]).len(), 3);
    }

    #[test]
    fn multi_document_lists_do_not_cross_match() {
        let mut db = Database::new();
        db.load_xml("a.xml", "<a><b/></a>").unwrap();
        db.load_xml("b.xml", "<a><b/></a>").unwrap();
        let a = inodes(&db, db.nodes_with_tag("a"));
        let b = inodes(&db, db.nodes_with_tag("b"));
        let pairs = structural_join(&a, &b, AxisRel::Child);
        assert_eq!(pairs.len(), 2);
        for (ai, bi) in pairs {
            assert_eq!(a[ai].id.doc, b[bi].id.doc);
        }
    }
}
