//! Holistic twig joins — TwigStack (Bruno, Koudas, Srivastava, SIGMOD 2002).
//!
//! The paper's §5.2 builds pattern matching from *binary* structural joins
//! ("implemented as described in \[1, 3, 5\]"); reference \[3\] is the holistic
//! alternative that matches a whole twig in one pass over the tag streams
//! with bounded intermediate results. This module implements TwigStack as
//! an alternative flat-pattern matcher:
//!
//! * one sorted stream (tag-index postings) and one stack per pattern node;
//! * `get_next` steers the streams so a node is only pushed when it has a
//!   possible extension to a full twig match (optimal for
//!   ancestor-descendant edges);
//! * root-to-leaf path solutions are emitted as stacks pop, then merge-
//!   joined on their shared branch nodes into full twig tuples.
//!
//! Parent-child edges are handled by post-filtering (TwigStack is known to
//! be suboptimal, not incorrect, for them). The ablation bench
//! `ablation_twigstack` compares this against the interval matcher that
//! drives the TLC operators.

use crate::physical::structural::INode;
use std::collections::HashMap;
use xmldb::{AxisRel, Database, NodeId, TagId};

/// A flat twig pattern (no matching specifications — the classical setting).
#[derive(Debug, Clone)]
pub struct Twig {
    nodes: Vec<TwigNode>,
}

/// One twig node.
#[derive(Debug, Clone)]
struct TwigNode {
    parent: Option<usize>,
    tag: TagId,
    axis: AxisRel,
}

impl Twig {
    /// Creates a twig with the given root tag.
    pub fn new(root: TagId) -> Twig {
        Twig { nodes: vec![TwigNode { parent: None, tag: root, axis: AxisRel::Descendant }] }
    }

    /// Adds a child pattern node; returns its index.
    pub fn add(&mut self, parent: usize, axis: AxisRel, tag: TagId) -> usize {
        debug_assert!(parent < self.nodes.len());
        self.nodes.push(TwigNode { parent: Some(parent), tag, axis });
        self.nodes.len() - 1
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the twig has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn children(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        self.nodes.iter().enumerate().filter(move |(_, n)| n.parent == Some(q)).map(|(i, _)| i)
    }

    fn is_leaf(&self, q: usize) -> bool {
        self.children(q).next().is_none()
    }

    fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&q| self.is_leaf(q)).collect()
    }

    /// Pattern nodes on the root-to-`q` path, root first.
    fn path_to(&self, q: usize) -> Vec<usize> {
        let mut path = vec![q];
        let mut cur = q;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// One full twig match: `tuple[i]` binds twig node `i`.
pub type TwigTuple = Vec<NodeId>;

/// Runs the holistic twig join, returning every match tuple.
pub fn twig_join(db: &Database, twig: &Twig) -> Vec<TwigTuple> {
    let n = twig.len();
    let streams: Vec<Vec<INode>> = twig
        .nodes
        .iter()
        .map(|tn| db.tag_index().get(tn.tag).iter().map(|&id| INode::of(db, id)).collect())
        .collect();
    let mut ts = TwigStack {
        twig,
        streams: &streams,
        cursor: vec![0; n],
        stacks: vec![Vec::new(); n],
        path_solutions: vec![Vec::new(); n],
    };
    ts.run();
    let path_solutions = ts.path_solutions;
    merge_paths(db, twig, path_solutions)
}

/// A stack entry: the data node plus the index of its parent-stack entry at
/// push time (-1 when the parent stack was empty / q is the twig root).
#[derive(Debug, Clone, Copy)]
struct Entry {
    node: INode,
    parent_top: isize,
}

struct TwigStack<'a> {
    twig: &'a Twig,
    streams: &'a [Vec<INode>],
    cursor: Vec<usize>,
    stacks: Vec<Vec<Entry>>,
    /// Per-leaf path solutions: each maps the root-to-leaf pattern path to
    /// data nodes (aligned with `Twig::path_to(leaf)`).
    path_solutions: Vec<Vec<Vec<NodeId>>>,
}

impl TwigStack<'_> {
    fn head(&self, q: usize) -> Option<INode> {
        self.streams[q].get(self.cursor[q]).copied()
    }

    fn advance(&mut self, q: usize) {
        self.cursor[q] += 1;
    }

    /// The classical getNext: returns a pattern node whose head stream
    /// element is guaranteed to participate in a solution rooted at it.
    fn get_next(&mut self, q: usize) -> usize {
        if self.twig.is_leaf(q) {
            return q;
        }
        let children: Vec<usize> = self.twig.children(q).collect();
        let mut heads: Vec<(usize, Option<INode>)> = Vec::with_capacity(children.len());
        for qi in children {
            let ni = self.get_next(qi);
            if ni != qi {
                return ni;
            }
            heads.push((qi, self.head(qi)));
        }
        // Sentinel semantics: an exhausted child stream reads +infinity.
        let alive: Vec<(usize, INode)> =
            heads.iter().filter_map(|(qi, h)| h.map(|h| (*qi, h))).collect();
        if alive.is_empty() {
            // Every child is at infinity: nothing below q can extend, and q
            // itself becomes useless — drain it so exhaustion bubbles up.
            while self.head(q).is_some() {
                self.advance(q);
            }
            return q;
        }
        let nmin = alive.iter().min_by_key(|(_, h)| h.id).expect("non-empty").0;
        if alive.len() < heads.len() {
            // Some child is at infinity: no *new* q entry can ever reach all
            // leaves, so drain q's stream entirely; surviving children still
            // stream under q's existing stack entries.
            while self.head(q).is_some() {
                self.advance(q);
            }
            return nmin;
        }
        let nmax_l = alive.iter().map(|(_, h)| h.id).max().expect("non-empty");
        while self.head(q).is_some_and(|h| (h.id.doc, h.end) < (nmax_l.doc, nmax_l.pre)) {
            self.advance(q);
        }
        match (self.head(q), self.head(nmin)) {
            (Some(hq), Some(hmin)) if hq.id < hmin.id => q,
            _ => nmin,
        }
    }

    fn clean_stack(&mut self, q: usize, until: NodeId) {
        while self.stacks[q].last().is_some_and(|e| {
            e.node.id.doc < until.doc || (e.node.id.doc == until.doc && e.node.end < until.pre)
        }) {
            self.stacks[q].pop();
        }
    }

    fn run(&mut self) {
        loop {
            let q = self.get_next(0);
            // Exhausted streams act as +infinity sentinels; `get_next` only
            // hands back an exhausted node once nothing anywhere below the
            // root can extend a solution, so this is global termination.
            let Some(head) = self.head(q) else { break };
            if let Some(p) = self.twig.nodes[q].parent {
                self.clean_stack(p, head.id);
            }
            let parent_ok = match self.twig.nodes[q].parent {
                None => true,
                Some(p) => !self.stacks[p].is_empty(),
            };
            if parent_ok {
                self.clean_stack(q, head.id);
                let parent_top = match self.twig.nodes[q].parent {
                    None => -1,
                    Some(p) => self.stacks[p].len() as isize - 1,
                };
                self.stacks[q].push(Entry { node: head, parent_top });
                self.advance(q);
                if self.twig.is_leaf(q) {
                    self.emit_paths(q);
                    self.stacks[q].pop();
                }
            } else {
                self.advance(q);
            }
        }
    }

    /// Emits every root-to-leaf path solution ending at the just-pushed leaf
    /// entry (the classical showSolutions, expanding the stack encoding).
    fn emit_paths(&mut self, leaf: usize) {
        let path = self.twig.path_to(leaf);
        let mut out = Vec::new();
        let leaf_entry = *self.stacks[leaf].last().expect("just pushed");
        self.expand(&path, path.len() - 1, leaf_entry, &mut vec![leaf_entry.node.id], &mut out);
        self.path_solutions[leaf].extend(out);
    }

    fn expand(
        &self,
        path: &[usize],
        depth: usize,
        entry: Entry,
        acc: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if depth == 0 {
            let mut solution: Vec<NodeId> = acc.clone();
            solution.reverse();
            out.push(solution);
            return;
        }
        let parent_q = path[depth - 1];
        // Every entry of the parent stack up to the recorded top is an
        // ancestor of this entry (the stack-encoding property).
        let top = entry.parent_top;
        for i in 0..=top {
            let pe = self.stacks[parent_q][i as usize];
            acc.push(pe.node.id);
            self.expand(path, depth - 1, pe, acc, out);
            acc.pop();
        }
    }
}

/// Merge phase: joins per-leaf path solutions on their shared pattern-node
/// prefixes, then applies parent-child post-filters.
fn merge_paths(
    db: &Database,
    twig: &Twig,
    path_solutions: Vec<Vec<Vec<NodeId>>>,
) -> Vec<TwigTuple> {
    let leaves = twig.leaves();
    // Start from the first leaf's solutions as partial tuples.
    let mut covered: Vec<usize> = twig.path_to(leaves[0]);
    let mut tuples: Vec<HashMap<usize, NodeId>> = path_solutions[leaves[0]]
        .iter()
        .map(|sol| covered.iter().copied().zip(sol.iter().copied()).collect())
        .collect();
    for &leaf in &leaves[1..] {
        let path = twig.path_to(leaf);
        let shared: Vec<usize> = path.iter().copied().filter(|q| covered.contains(q)).collect();
        // Hash the new leaf's paths by their shared-node bindings.
        let mut by_key: HashMap<Vec<NodeId>, Vec<&Vec<NodeId>>> = HashMap::new();
        for sol in &path_solutions[leaf] {
            let key: Vec<NodeId> = shared
                .iter()
                .map(|q| sol[path.iter().position(|p| p == q).expect("shared ⊆ path")])
                .collect();
            by_key.entry(key).or_default().push(sol);
        }
        let mut next = Vec::new();
        for t in &tuples {
            let key: Vec<NodeId> = shared.iter().map(|q| t[q]).collect();
            if let Some(sols) = by_key.get(&key) {
                for sol in sols {
                    let mut merged = t.clone();
                    for (i, q) in path.iter().enumerate() {
                        merged.insert(*q, sol[i]);
                    }
                    next.push(merged);
                }
            }
        }
        tuples = next;
        let fresh: Vec<usize> = path.iter().copied().filter(|q| !covered.contains(q)).collect();
        covered.extend(fresh);
    }
    // Post-filter parent-child edges and order columns by pattern index.
    let mut out = Vec::with_capacity(tuples.len());
    'tuple: for t in tuples {
        for (q, tn) in twig.nodes.iter().enumerate() {
            if let Some(p) = tn.parent {
                let parent = t[&p];
                let child = t[&q];
                match tn.axis {
                    AxisRel::Child => {
                        if !db.is_parent(parent, child) {
                            continue 'tuple;
                        }
                    }
                    AxisRel::Descendant => {
                        if !db.is_ancestor(parent, child) {
                            continue 'tuple;
                        }
                    }
                }
            }
        }
        out.push((0..twig.len()).map(|q| t[&q]).collect());
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Reference implementation: naive nested-loop twig evaluation, used by the
/// tests to validate TwigStack.
pub fn twig_join_naive(db: &Database, twig: &Twig) -> Vec<TwigTuple> {
    let mut out = Vec::new();
    let candidates: Vec<&[NodeId]> =
        twig.nodes.iter().map(|tn| db.tag_index().get(tn.tag)).collect();
    let mut tuple: Vec<NodeId> = Vec::with_capacity(twig.len());
    naive_rec(db, twig, &candidates, 0, &mut tuple, &mut out);
    out.sort_unstable();
    out
}

fn naive_rec(
    db: &Database,
    twig: &Twig,
    candidates: &[&[NodeId]],
    q: usize,
    tuple: &mut Vec<NodeId>,
    out: &mut Vec<TwigTuple>,
) {
    if q == twig.len() {
        out.push(tuple.clone());
        return;
    }
    for &c in candidates[q] {
        let ok = match twig.nodes[q].parent {
            None => true,
            Some(p) => {
                let parent = tuple[p];
                match twig.nodes[q].axis {
                    AxisRel::Child => db.is_parent(parent, c),
                    AxisRel::Descendant => db.is_ancestor(parent, c),
                }
            }
        };
        if ok {
            tuple.push(c);
            naive_rec(db, twig, candidates, q + 1, tuple, out);
            tuple.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(xml: &str) -> Database {
        let mut d = Database::new();
        d.load_xml("t.xml", xml).unwrap();
        d
    }

    fn tag(d: &Database, n: &str) -> TagId {
        d.interner().intern(n)
    }

    #[test]
    fn simple_path_twig() {
        let d = db("<r><a><b><c/></b></a><a><c/></a><b/></r>");
        let mut twig = Twig::new(tag(&d, "a"));
        let b = twig.add(0, AxisRel::Descendant, tag(&d, "b"));
        twig.add(b, AxisRel::Descendant, tag(&d, "c"));
        let fast = twig_join(&d, &twig);
        let naive = twig_join_naive(&d, &twig);
        assert_eq!(fast, naive);
        assert_eq!(fast.len(), 1, "only the first a has b//c");
    }

    #[test]
    fn branching_twig() {
        let d = db("<r>\
               <p><n>x</n><g>1</g></p>\
               <p><n>y</n></p>\
               <p><g>2</g></p>\
               <p><n>z</n><g>3</g><g>4</g></p>\
             </r>");
        let mut twig = Twig::new(tag(&d, "p"));
        twig.add(0, AxisRel::Descendant, tag(&d, "n"));
        twig.add(0, AxisRel::Descendant, tag(&d, "g"));
        let fast = twig_join(&d, &twig);
        let naive = twig_join_naive(&d, &twig);
        assert_eq!(fast, naive);
        // p1×(n,g)=1, p4×(n,{g,g})=2.
        assert_eq!(fast.len(), 3);
    }

    #[test]
    fn parent_child_post_filter() {
        let d = db("<r><a><x><b/></x></a><a><b/></a></r>");
        let mut twig = Twig::new(tag(&d, "a"));
        twig.add(0, AxisRel::Child, tag(&d, "b"));
        let fast = twig_join(&d, &twig);
        assert_eq!(fast, twig_join_naive(&d, &twig));
        assert_eq!(fast.len(), 1, "only the direct child matches");
    }

    #[test]
    fn recursive_ancestors() {
        let d = db("<r><s><s><t/></s></s></r>");
        let mut twig = Twig::new(tag(&d, "s"));
        twig.add(0, AxisRel::Descendant, tag(&d, "t"));
        let fast = twig_join(&d, &twig);
        let naive = twig_join_naive(&d, &twig);
        assert_eq!(fast, naive);
        assert_eq!(fast.len(), 2, "both nested s elements match");
    }

    #[test]
    fn empty_stream_means_no_matches() {
        let d = db("<r><a/></r>");
        let mut twig = Twig::new(tag(&d, "a"));
        twig.add(0, AxisRel::Descendant, tag(&d, "zebra"));
        assert!(twig_join(&d, &twig).is_empty());
    }

    #[test]
    fn twigstack_matches_naive_on_xmark_patterns() {
        let d = {
            let mut db = Database::new();
            // A miniature auction-shaped document with plenty of nesting.
            db.load_xml(
                "t.xml",
                "<site><open_auctions>\
                   <open_auction><bidder><personref/></bidder><bidder><personref/></bidder><quantity/></open_auction>\
                   <open_auction><bidder><personref/></bidder></open_auction>\
                   <open_auction><quantity/></open_auction>\
                 </open_auctions></site>",
            )
            .unwrap();
            db
        };
        let mut twig = Twig::new(tag(&d, "open_auction"));
        let b = twig.add(0, AxisRel::Child, tag(&d, "bidder"));
        twig.add(b, AxisRel::Descendant, tag(&d, "personref"));
        twig.add(0, AxisRel::Child, tag(&d, "quantity"));
        let fast = twig_join(&d, &twig);
        let naive = twig_join_naive(&d, &twig);
        assert_eq!(fast, naive);
        assert_eq!(fast.len(), 2, "first auction's two bidders × its quantity");
    }
}
