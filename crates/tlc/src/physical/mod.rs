//! Physical operators (paper §5).
//!
//! * [`structural`] — merge-based structural joins over interval-encoded
//!   node lists, including the paper's **nest-structural-join**
//!   (Definition 8, Figure 14) and both left-outer variants.
//! * [`twigstack`] — holistic twig joins (TwigStack, reference \[3\] of the
//!   paper), an alternative flat-pattern matcher used by the ablation
//!   benches.
//! * [`valjoin`] — the **sort-merge-sort** value join of §5.1 (sort by join
//!   key, merge, re-sort by node id to restore document order) and its nest
//!   variants.

pub mod structural;
pub mod twigstack;
pub mod valjoin;

pub use structural::{
    candidates_in, left_outer_nest_structural_join, left_outer_structural_join,
    nest_structural_join, structural_join, INode,
};
pub use twigstack::{twig_join, twig_join_naive, Twig};
pub use valjoin::{merge_join_eq, nested_loop_join, JoinKey};
