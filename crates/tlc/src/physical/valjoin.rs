//! Value joins: the sort-merge-sort strategy of §5.1.
//!
//! The paper's node identifiers indicate absolute document order, so a value
//! join can sort both inputs by join key, merge, and then re-sort the output
//! by the left input's node id to restore document order — giving "better
//! performance and linear scalability without sacrificing document
//! ordering". The merge itself lives here; the re-sort happens in the Join
//! operator, which owns the trees.

use std::cmp::Ordering;

/// A normalized join key: numeric when the text parses as a number, textual
/// otherwise. Numbers never equal strings.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinKey {
    /// Numeric key.
    Num(f64),
    /// Textual key.
    Str(String),
}

impl JoinKey {
    /// Normalizes raw text into a key.
    pub fn from_text(s: &str) -> JoinKey {
        match s.trim().parse::<f64>() {
            Ok(n) => JoinKey::Num(n),
            Err(_) => JoinKey::Str(s.to_string()),
        }
    }

    /// Total order over keys (numbers before strings).
    pub fn order(&self, other: &JoinKey) -> Ordering {
        match (self, other) {
            (JoinKey::Num(a), JoinKey::Num(b)) => a.total_cmp(b),
            (JoinKey::Str(a), JoinKey::Str(b)) => a.cmp(b),
            (JoinKey::Num(_), JoinKey::Str(_)) => Ordering::Less,
            (JoinKey::Str(_), JoinKey::Num(_)) => Ordering::Greater,
        }
    }
}

/// Equi-join by sort-merge. Inputs are key lists (one key per tree); output
/// is every matching `(left_index, right_index)` pair. Cost is
/// `O(n log n + m log m + output)` rather than the nested-loop `O(n·m)`.
pub fn merge_join_eq(left: &[JoinKey], right: &[JoinKey]) -> Vec<(usize, usize)> {
    let mut li: Vec<usize> = (0..left.len()).collect();
    let mut ri: Vec<usize> = (0..right.len()).collect();
    li.sort_by(|a, b| left[*a].order(&left[*b]));
    ri.sort_by(|a, b| right[*a].order(&right[*b]));
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < li.len() && j < ri.len() {
        match left[li[i]].order(&right[ri[j]]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Emit the full group × group block.
                let key = &left[li[i]];
                let i_end = (i..li.len())
                    .find(|&k| left[li[k]].order(key) != Ordering::Equal)
                    .unwrap_or(li.len());
                let j_end = (j..ri.len())
                    .find(|&k| right[ri[k]].order(key) != Ordering::Equal)
                    .unwrap_or(ri.len());
                for &l in &li[i..i_end] {
                    for &r in &ri[j..j_end] {
                        out.push((l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Fallback for non-equality join predicates: nested loops with a caller-
/// supplied predicate. (The paper's TIMBER setup likewise has no join-value
/// index; non-equi joins are rare in the workload.)
pub fn nested_loop_join(
    left: &[JoinKey],
    right: &[JoinKey],
    pred: impl Fn(&JoinKey, &JoinKey) -> bool,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (l, lk) in left.iter().enumerate() {
        for (r, rk) in right.iter().enumerate() {
            if pred(lk, rk) {
                out.push((l, r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(texts: &[&str]) -> Vec<JoinKey> {
        texts.iter().map(|t| JoinKey::from_text(t)).collect()
    }

    #[test]
    fn normalization() {
        assert_eq!(JoinKey::from_text("25"), JoinKey::Num(25.0));
        assert_eq!(JoinKey::from_text(" 2.5 "), JoinKey::Num(2.5));
        assert_eq!(JoinKey::from_text("person0"), JoinKey::Str("person0".into()));
    }

    #[test]
    fn equi_join_finds_all_pairs() {
        let l = keys(&["a", "b", "a", "c"]);
        let r = keys(&["b", "a", "d"]);
        let mut pairs = merge_join_eq(&l, &r);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 1)]);
    }

    #[test]
    fn equi_join_handles_duplicate_groups() {
        let l = keys(&["x", "x"]);
        let r = keys(&["x", "x", "x"]);
        assert_eq!(merge_join_eq(&l, &r).len(), 6);
    }

    #[test]
    fn numbers_never_equal_strings() {
        let l = keys(&["5"]);
        let r = vec![JoinKey::Str("5".into())];
        assert!(merge_join_eq(&l, &r).is_empty());
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_join_eq(&[], &keys(&["a"])).is_empty());
        assert!(merge_join_eq(&keys(&["a"]), &[]).is_empty());
    }

    #[test]
    fn merge_matches_nested_loop_on_random_data() {
        let l: Vec<JoinKey> = (0..50).map(|i| JoinKey::Num(f64::from(i % 7))).collect();
        let r: Vec<JoinKey> = (0..30).map(|i| JoinKey::Num(f64::from(i % 5))).collect();
        let mut a = merge_join_eq(&l, &r);
        let mut b = nested_loop_join(&l, &r, |x, y| x == y);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn nested_loop_supports_inequalities() {
        let l = keys(&["1", "5"]);
        let r = keys(&["3"]);
        let pairs = nested_loop_join(
            &l,
            &r,
            |a, b| matches!((a, b), (JoinKey::Num(x), JoinKey::Num(y)) if x > y),
        );
        assert_eq!(pairs, vec![(1, 0)]);
    }
}
