//! A small cost-based optimizer.
//!
//! The paper leaves two decisions "to an optimizer": structural join order
//! (§5.2, deferring to its reference \[19\]) and *when* to apply the §4
//! rewrites (§6.4 applies them to hand-picked queries). This module supplies
//! the missing piece:
//!
//! * a cardinality/cost model over plans, fed by the store's tag and value
//!   index statistics ([`CostModel`]);
//! * [`optimize_costed`] — applies a Flatten or Shadow/Illuminate rewrite
//!   only when the model predicts it cheaper, fixing the pattern the
//!   EXPERIMENTS.md Figure 16 discussion identifies: on an in-memory store
//!   a rewrite can *lose* when the flat branch it removes carried a
//!   selective predicate.
//!
//! The model is deliberately coarse (uniformity assumptions everywhere); it
//! only needs to rank plan alternatives, not predict wall-clock times.

use crate::logical_class::LclId;
use crate::pattern::{Apt, AptRoot, ContentPred, PredValue};
use crate::plan::Plan;
use crate::rewrite;
use std::collections::HashMap;
use xmldb::Database;
use xquery::CmpOp;

/// Estimated properties of an operator's output.
#[derive(Debug, Clone, Copy)]
struct Estimate {
    /// Cumulative cost of producing it (abstract units ≈ node touches).
    cost: f64,
    /// Number of trees.
    trees: f64,
    /// Average nodes per tree.
    width: f64,
}

/// Cardinality and cost estimation over plans.
///
/// `access_weight` prices one *data access* (an index posting touched, a
/// node inspected) relative to one unit of in-memory tree construction.
/// `1.0` models this crate's in-memory store; large values model the
/// paper's disk-resident TIMBER, where every access was potential I/O. The
/// §4 rewrites trade accesses for restructuring, so this knob is exactly
/// what decides their profitability (see EXPERIMENTS.md §E2).
pub struct CostModel<'a> {
    db: &'a Database,
    access_weight: f64,
}

impl<'a> CostModel<'a> {
    /// Builds a model over the database's index statistics with in-memory
    /// access pricing.
    pub fn new(db: &'a Database) -> Self {
        CostModel { db, access_weight: 1.0 }
    }

    /// Builds a model pricing each data access at `weight` construction
    /// units (disk-resident stores: tens to hundreds).
    pub fn with_access_weight(db: &'a Database, weight: f64) -> Self {
        CostModel { db, access_weight: weight }
    }

    /// Estimated total cost of a plan (abstract units).
    pub fn plan_cost(&self, plan: &Plan) -> f64 {
        self.estimate(plan).cost
    }

    /// Estimated output cardinality of a plan.
    pub fn plan_cardinality(&self, plan: &Plan) -> f64 {
        self.estimate(plan).trees
    }

    fn tag_count(&self, tag: xmldb::TagId) -> f64 {
        self.db.tag_index().get(tag).len() as f64
    }

    /// Selectivity of a content predicate on nodes with the given tag,
    /// probed against the value index where possible.
    fn pred_selectivity(&self, tag: xmldb::TagId, pred: &ContentPred) -> f64 {
        let total = self.tag_count(tag).max(1.0);
        let matched = match (&pred.value, pred.op) {
            (PredValue::Str(s), CmpOp::Eq) => {
                self.db.value_index().lookup_exact(tag, s).len() as f64
            }
            (PredValue::Num(n), CmpOp::Eq) => {
                self.db.value_index().lookup_cmp(tag, std::cmp::Ordering::Equal, *n).len() as f64
            }
            (PredValue::Num(n), CmpOp::Lt) => {
                self.db.value_index().lookup_cmp(tag, std::cmp::Ordering::Less, *n).len() as f64
            }
            (PredValue::Num(n), CmpOp::Gt) => {
                self.db.value_index().lookup_cmp(tag, std::cmp::Ordering::Greater, *n).len() as f64
            }
            // Ne / Le / Ge / Contains: fall back to a default.
            _ => total * 0.5,
        };
        (matched / total).clamp(0.0, 1.0)
    }

    /// Per-select estimation: walks the APT computing expected fan-out and
    /// node touches.
    fn select_estimate(&self, apt: &Apt, input: Option<Estimate>) -> Estimate {
        let (anchor_count, mut cost, base_width) = match (&apt.root, input) {
            (AptRoot::Document { .. }, _) => (1.0, 0.0, 1.0),
            (AptRoot::Lcl(_), Some(e)) => (e.trees, e.cost, e.width),
            (AptRoot::Lcl(_), None) => (1.0, 0.0, 1.0),
        };
        // Per anchor: expected matches per pattern node.
        let mut per_node_matches: HashMap<usize, f64> = HashMap::new();
        let mut fanout = 1.0; // trees per anchor (from `-`/`?` fan-out)
        let mut added_width = 0.0;
        let mut touches_per_anchor = 0.0;
        for (i, node) in apt.nodes.iter().enumerate() {
            let parent_matches = match node.parent {
                None => 1.0,
                Some(p) => *per_node_matches.get(&p).unwrap_or(&1.0),
            };
            // Candidates per parent match: uniform split of the tag's
            // postings over the parent tag's population (or the anchors).
            let parent_pop = match node.parent {
                None => match &apt.root {
                    AptRoot::Document { .. } => 1.0,
                    AptRoot::Lcl(_) => anchor_count.max(1.0),
                },
                Some(p) => self.tag_count(apt.nodes[p].tag).max(1.0),
            };
            let mut per_parent = self.tag_count(node.tag) / parent_pop;
            if let Some(pred) = &node.pred {
                per_parent *= self.pred_selectivity(node.tag, pred);
            }
            let matches = parent_matches * per_parent;
            touches_per_anchor += matches.max(0.1);
            per_node_matches.insert(i, matches);
            if node.mspec.groups() {
                added_width += matches;
            } else {
                // `-`/`?` edges fan witness trees out per match.
                let f = if node.mspec.optional() { per_parent.max(1.0) } else { per_parent };
                fanout *= f.max(1e-3);
                added_width += 1.0;
            }
        }
        let trees = (anchor_count * fanout).max(0.0);
        let width = base_width + added_width;
        cost += self.access_weight * anchor_count * touches_per_anchor + trees * width;
        Estimate { cost, trees, width }
    }

    fn estimate(&self, plan: &Plan) -> Estimate {
        match plan {
            Plan::Select { input, apt } => {
                let in_est = input.as_ref().map(|i| self.estimate(i));
                self.select_estimate(apt, in_est)
            }
            Plan::Filter { input, .. } => {
                let e = self.estimate(input);
                Estimate { cost: e.cost + e.trees, trees: e.trees * 0.5, width: e.width }
            }
            Plan::Join { left, right, spec } => {
                let l = self.estimate(left);
                let r = self.estimate(right);
                let sort = l.trees.max(1.0) * l.trees.max(2.0).log2()
                    + r.trees.max(1.0) * r.trees.max(2.0).log2();
                let out_trees = match spec.pred {
                    None => l.trees * r.trees,
                    // Equi-join with unknown key distribution: assume each
                    // left tree matches a handful of rights.
                    Some(_) => {
                        (l.trees * (r.trees / l.trees.max(1.0)).min(4.0)).max(l.trees.min(r.trees))
                    }
                };
                let out_trees = if spec.right_mspec.groups() || spec.right_mspec.optional() {
                    out_trees.max(l.trees)
                } else {
                    out_trees
                };
                let width = l.width + r.width + 1.0;
                Estimate {
                    cost: l.cost + r.cost + sort + out_trees * width,
                    trees: out_trees,
                    width,
                }
            }
            Plan::Project { input, keep } => {
                let e = self.estimate(input);
                let width = (keep.len() as f64 + 1.0).min(e.width);
                Estimate { cost: e.cost + e.trees * e.width, trees: e.trees, width }
            }
            Plan::DupElim { input, .. } => {
                let e = self.estimate(input);
                Estimate { cost: e.cost + e.trees, trees: (e.trees * 0.8).max(1.0), width: e.width }
            }
            Plan::Aggregate { input, .. } => {
                let e = self.estimate(input);
                Estimate { cost: e.cost + e.trees * e.width, trees: e.trees, width: e.width + 1.0 }
            }
            Plan::Construct { input, spec } => {
                let e = self.estimate(input);
                let width = (spec.len() as f64).max(1.0) + e.width * 0.5;
                Estimate { cost: e.cost + e.trees * width, trees: e.trees, width }
            }
            Plan::Sort { input, .. } => {
                let e = self.estimate(input);
                Estimate { cost: e.cost + e.trees.max(1.0) * e.trees.max(2.0).log2(), ..e }
            }
            Plan::Flatten { input, child, .. } | Plan::Shadow { input, child, .. } => {
                let e = self.estimate(input);
                // Fans out per cluster member; each output is a tree copy.
                let members = self.class_width_hint(input, *child).max(1.0);
                let trees = e.trees * members;
                Estimate { cost: e.cost + trees * e.width, trees, width: e.width }
            }
            Plan::Illuminate { input, .. } => {
                let e = self.estimate(input);
                Estimate { cost: e.cost + e.trees, ..e }
            }
            Plan::GroupBy { input, .. } => {
                let e = self.estimate(input);
                // Split + hash + merge + re-walk: several passes.
                Estimate { cost: e.cost + 3.0 * e.trees * e.width, ..e }
            }
            Plan::Materialize { input, lcls } => {
                let e = self.estimate(input);
                let copied = e.trees * (lcls.len() as f64) * 10.0;
                Estimate {
                    cost: e.cost + copied,
                    trees: e.trees,
                    width: e.width + copied / e.trees.max(1.0),
                }
            }
            Plan::Union { inputs, .. } => {
                let mut cost = 0.0;
                let mut trees = 0.0;
                let mut width: f64 = 1.0;
                for i in inputs {
                    let e = self.estimate(i);
                    cost += e.cost;
                    trees += e.trees;
                    width = width.max(e.width);
                }
                Estimate { cost: cost + trees, trees, width }
            }
        }
    }

    /// Expected cluster size of `lcl` in the input plan's output: the
    /// matches-per-anchor of the pattern node that created it.
    fn class_width_hint(&self, plan: &Plan, lcl: LclId) -> f64 {
        let mut hint = 1.0;
        let mut found = false;
        visit(plan, &mut |p| {
            if found {
                return;
            }
            if let Plan::Select { apt, .. } = p {
                if let Some(i) = apt.node_with_lcl(lcl) {
                    let node = &apt.nodes[i];
                    let parent_pop = match node.parent {
                        None => 1.0,
                        Some(pp) => self.tag_count(apt.nodes[pp].tag).max(1.0),
                    };
                    let mut per = self.tag_count(node.tag) / parent_pop;
                    if let Some(pred) = &node.pred {
                        per *= self.pred_selectivity(node.tag, pred);
                    }
                    hint = per;
                    found = true;
                }
            }
        });
        hint
    }
}

fn visit(plan: &Plan, f: &mut impl FnMut(&Plan)) {
    f(plan);
    match plan {
        Plan::Select { input, .. } => {
            if let Some(i) = input {
                visit(i, f);
            }
        }
        Plan::Join { left, right, .. } => {
            visit(left, f);
            visit(right, f);
        }
        Plan::Union { inputs, .. } => {
            for i in inputs {
                visit(i, f);
            }
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => visit(input, f),
    }
}

/// Cost-guarded rewriting: applies Flatten and Shadow/Illuminate rewrites
/// only while the cost model predicts an improvement (in-memory pricing).
pub fn optimize_costed(plan: &Plan, db: &Database) -> Plan {
    optimize_costed_with(plan, db, 1.0)
}

/// Cost-guarded rewriting with an explicit access weight (see
/// [`CostModel::with_access_weight`]).
pub fn optimize_costed_with(plan: &Plan, db: &Database, access_weight: f64) -> Plan {
    let model = CostModel::with_access_weight(db, access_weight);
    let mut best = plan.clone();
    let mut best_cost = model.plan_cost(&best);
    loop {
        let mut improved = false;
        for candidate in [rewrite::flatten_rewrite(&best), rewrite::shadow_rewrite(&best)] {
            let (rewritten, changed) = candidate;
            if !changed {
                continue;
            }
            let cost = model.plan_cost(&rewritten);
            if cost < best_cost {
                best = rewritten;
                best_cost = cost;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_to_string;

    fn db() -> Database {
        xmldb::Database::new()
    }

    fn auction_db() -> Database {
        let mut d = db();
        let mut xml = String::from("<site><people>");
        for p in 0..30 {
            xml.push_str(&format!(
                r#"<person id="p{p}"><name>N{p}</name><age>{}</age></person>"#,
                20 + p
            ));
        }
        xml.push_str("</people><open_auctions>");
        for o in 0..20 {
            xml.push_str("<open_auction>");
            for b in 0..(1 + o % 7) {
                xml.push_str(&format!(
                    r#"<bidder><personref person="p{}"/><increase>{}</increase></bidder>"#,
                    (o + b) % 30,
                    b * 7 + 1,
                ));
            }
            xml.push_str(&format!("<quantity>{}</quantity></open_auction>", o % 9 + 1));
        }
        xml.push_str("</open_auctions></site>");
        d.load_xml("auction.xml", &xml).unwrap();
        d
    }

    #[test]
    fn cardinalities_track_reality_roughly() {
        let d = auction_db();
        let plan = crate::compile(
            r#"FOR $p IN document("auction.xml")//person WHERE $p/age > 35 RETURN $p/name"#,
            &d,
        )
        .unwrap();
        let model = CostModel::new(&d);
        let est = model.plan_cardinality(&plan);
        let actual = execute_to_string(&d, &plan).unwrap().lines().count() as f64;
        assert!(
            est >= actual * 0.2 && est <= actual * 5.0,
            "estimate {est} should be within 5x of actual {actual}"
        );
    }

    #[test]
    fn costed_optimizer_accepts_rewrites_under_disk_pricing() {
        // Q1/x3 shape: the flat bidder branch carries no selective
        // predicate, so the rewrite removes real duplicate accesses. Under
        // disk-like access pricing (the paper's testbed) that dominates the
        // extra restructuring and the rewrite is accepted.
        let d = auction_db();
        let plan = crate::compile(
            r#"FOR $p IN document("auction.xml")//person
               FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 2 AND $p/@id = $o/bidder/personref/@person
               RETURN <r>{$o/bidder}</r>"#,
            &d,
        )
        .unwrap();
        let costed = optimize_costed_with(&plan, &d, 50.0);
        assert_ne!(costed, plan, "the rewrite should be accepted at disk pricing");
        assert_eq!(execute_to_string(&d, &plan).unwrap(), execute_to_string(&d, &costed).unwrap());
    }

    #[test]
    fn costed_optimizer_rejects_unprofitable_rewrites() {
        // x5 shape: the flat branch is guarded by a very selective predicate
        // (`increase > 40` matches almost nothing), so the original fan-out
        // is tiny and flattening every bidder would lose.
        let d = auction_db();
        let plan = crate::compile(
            r#"FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 2 AND $o/bidder/increase > 40
               RETURN <n>{count($o/bidder)}</n>"#,
            &d,
        )
        .unwrap();
        let (rewritten, applicable) = rewrite::flatten_rewrite(&plan);
        assert!(applicable, "the rewrite is syntactically applicable");
        let model = CostModel::new(&d);
        assert!(
            model.plan_cost(&rewritten) > model.plan_cost(&plan),
            "the model should price the rewrite as a loss here"
        );
        let costed = optimize_costed(&plan, &d);
        assert_eq!(costed, plan, "and optimize_costed should reject it");
    }

    #[test]
    fn costed_output_always_matches_plain() {
        let d = auction_db();
        for q in [
            r#"FOR $p IN document("auction.xml")//person RETURN $p/name"#,
            r#"FOR $o IN document("auction.xml")//open_auction
               WHERE count($o/bidder) > 4 AND $o/bidder/increase > 5
               RETURN <n>{count($o/bidder)}</n>"#,
        ] {
            let plan = crate::compile(q, &d).unwrap();
            let costed = optimize_costed(&plan, &d);
            assert_eq!(
                execute_to_string(&d, &plan).unwrap(),
                execute_to_string(&d, &costed).unwrap(),
                "{q}"
            );
        }
    }
}
