//! Request-scoped execution memory: recycled buffer pools with bump-style
//! reset semantics.
//!
//! The executor's hot paths — candidate generation in [`crate::matching`],
//! the operator kernels reached through [`crate::ops::select()`], and the
//! register frame of [`crate::vm`] — used to allocate a fresh `Vec` for
//! every intermediate buffer and drop it at request end. Under batched
//! dispatch and shard waves that churn multiplies per worker. An
//! [`ExecArena`] breaks the cycle: buffers are *taken* from typed free
//! lists and *given* back when their contents are consumed, so one
//! request's allocations become the next request's capacity. The service
//! recycles whole arenas across requests through a per-pool checkout
//! (reset, don't free); a standalone [`crate::ExecCtx`] carries a private
//! arena so even single-shot executions reuse buffers *within* a request.
//!
//! # Rules
//!
//! * **Reset, don't free.** [`ExecArena::reset`] keeps every parked buffer
//!   and its capacity; only the per-request counters restart. Memory is
//!   bounded by the retained-byte `limit`: a give that would exceed it
//!   drops the buffer instead of parking it.
//! * **Never observable.** A taken buffer is always empty; parking clears
//!   contents eagerly, so no data survives into the next request. Output
//!   bytes, cache content and every pre-existing [`crate::ExecStats`]
//!   counter are identical with the arena on, off, or at any limit — only
//!   the three arena counters differ.
//! * **Errors discard.** Buffers in flight when an execution fails are
//!   simply dropped; the service additionally discards the whole arena of
//!   a failed or cancelled job (see `service`'s arena pool), so no arena
//!   is ever reused across a cancelled shard wave.

use crate::tree::ResultTree;
use xmldb::NodeId;

/// Default retained-byte budget per arena (the `--arena-kb` default).
pub const DEFAULT_ARENA_BYTES: usize = 256 * 1024;

/// One register-frame buffer (see [`crate::vm`]).
pub type RegFrame = Vec<Option<Vec<ResultTree>>>;

/// Typed recycled-buffer free lists with bump-style reset semantics.
///
/// `take_*` pops a cleared buffer (or falls back to a fresh allocation);
/// `give_*` parks a spent buffer for reuse while the retained capacity
/// stays under the byte limit. `ExecArena::disabled()` (limit 0) never
/// parks and never serves — byte-for-byte the pre-arena allocation
/// behavior, which the equivalence tests use as the seed path.
#[derive(Debug)]
pub struct ExecArena {
    /// Retained-byte cap; 0 disables recycling entirely.
    limit: usize,
    /// Candidate/posting buffers (pattern matching).
    nodes: Vec<Vec<NodeId>>,
    /// Intermediate witness-tree lists (operator inputs/outputs).
    trees: Vec<Vec<ResultTree>>,
    /// VM register frames.
    frames: Vec<RegFrame>,
    /// Capacity bytes currently parked across all free lists.
    retained: usize,
    /// High-water mark of `retained` since the last reset.
    hwm: usize,
    /// Lifetime reset count (one per recycled checkout).
    resets: u64,
    /// Takes served from a free list since the last reset.
    reuses: u64,
    /// Takes that fell back to a fresh allocation since the last reset.
    fallbacks: u64,
}

impl Default for ExecArena {
    fn default() -> Self {
        ExecArena::with_limit(DEFAULT_ARENA_BYTES)
    }
}

fn take_from<T>(list: &mut Vec<Vec<T>>, retained: &mut usize) -> Option<Vec<T>> {
    let buf = list.pop()?;
    *retained -= buf.capacity() * std::mem::size_of::<T>();
    debug_assert!(buf.is_empty(), "parked buffers are cleared");
    Some(buf)
}

fn give_to<T>(
    list: &mut Vec<Vec<T>>,
    retained: &mut usize,
    hwm: &mut usize,
    limit: usize,
    mut buf: Vec<T>,
) {
    let bytes = buf.capacity() * std::mem::size_of::<T>();
    if bytes == 0 || *retained + bytes > limit {
        return; // nothing worth parking, or over budget: drop
    }
    buf.clear();
    *retained += bytes;
    *hwm = (*hwm).max(*retained);
    list.push(buf);
}

impl ExecArena {
    /// An arena that parks at most `limit` capacity bytes.
    pub fn with_limit(limit: usize) -> Self {
        ExecArena {
            limit,
            nodes: Vec::new(),
            trees: Vec::new(),
            frames: Vec::new(),
            retained: 0,
            hwm: 0,
            resets: 0,
            reuses: 0,
            fallbacks: 0,
        }
    }

    /// An arena that never recycles — every take is a fresh allocation and
    /// every give drops, exactly the pre-arena allocation behavior.
    pub fn disabled() -> Self {
        ExecArena::with_limit(0)
    }

    /// Prepares a recycled arena for its next request: parked buffers and
    /// their capacity survive, the per-request counters restart.
    pub fn reset(&mut self) {
        self.resets += 1;
        self.reuses = 0;
        self.fallbacks = 0;
        self.hwm = self.retained;
    }

    fn count(&mut self, served: bool) -> bool {
        if served {
            self.reuses += 1;
        } else {
            self.fallbacks += 1;
        }
        !served
    }

    /// A cleared candidate buffer; the flag is `true` when the take fell
    /// back to a fresh allocation.
    pub fn take_nodes(&mut self) -> (Vec<NodeId>, bool) {
        let buf = take_from(&mut self.nodes, &mut self.retained);
        let fresh = self.count(buf.is_some());
        (buf.unwrap_or_default(), fresh)
    }

    /// Parks a spent candidate buffer (dropped when over budget).
    pub fn give_nodes(&mut self, buf: Vec<NodeId>) {
        give_to(&mut self.nodes, &mut self.retained, &mut self.hwm, self.limit, buf);
    }

    /// A cleared witness-tree list; flag as in [`ExecArena::take_nodes`].
    pub fn take_trees(&mut self) -> (Vec<ResultTree>, bool) {
        let buf = take_from(&mut self.trees, &mut self.retained);
        let fresh = self.count(buf.is_some());
        (buf.unwrap_or_default(), fresh)
    }

    /// Parks a spent witness-tree list (contents are dropped eagerly).
    pub fn give_trees(&mut self, buf: Vec<ResultTree>) {
        give_to(&mut self.trees, &mut self.retained, &mut self.hwm, self.limit, buf);
    }

    /// A cleared VM register frame; flag as in [`ExecArena::take_nodes`].
    pub fn take_frame(&mut self) -> (RegFrame, bool) {
        let buf = take_from(&mut self.frames, &mut self.retained);
        let fresh = self.count(buf.is_some());
        (buf.unwrap_or_default(), fresh)
    }

    /// Parks a spent register frame (register contents are dropped).
    pub fn give_frame(&mut self, buf: RegFrame) {
        give_to(&mut self.frames, &mut self.retained, &mut self.hwm, self.limit, buf);
    }

    /// Capacity bytes currently parked.
    pub fn retained_bytes(&self) -> usize {
        self.retained
    }

    /// High-water mark of parked capacity bytes since the last reset.
    pub fn high_water(&self) -> usize {
        self.hwm
    }

    /// The retained-byte cap this arena was built with.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Lifetime reset count (one per recycled checkout).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Takes served from a free list since the last reset.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Takes that hit the global allocator since the last reset.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::DocId;

    #[test]
    fn buffers_cycle_and_stay_cleared() {
        let mut a = ExecArena::with_limit(1 << 20);
        let (mut buf, fresh) = a.take_nodes();
        assert!(fresh, "first take has nothing to serve");
        buf.extend([NodeId::new(DocId(0), 1), NodeId::new(DocId(0), 2)]);
        let cap = buf.capacity();
        a.give_nodes(buf);
        assert_eq!(a.retained_bytes(), cap * std::mem::size_of::<NodeId>());
        assert!(a.high_water() >= a.retained_bytes());
        let (again, fresh) = a.take_nodes();
        assert!(!fresh, "second take reuses the parked buffer");
        assert!(again.is_empty(), "parked contents must not leak");
        assert_eq!(again.capacity(), cap);
        assert_eq!(a.retained_bytes(), 0, "in-flight buffers are not retained");
        assert_eq!((a.reuses(), a.fallbacks()), (1, 1));
    }

    #[test]
    fn disabled_arena_never_parks() {
        let mut a = ExecArena::disabled();
        let (mut buf, fresh) = a.take_nodes();
        assert!(fresh);
        buf.push(NodeId::new(DocId(0), 1));
        a.give_nodes(buf);
        assert_eq!(a.retained_bytes(), 0);
        let (_, fresh) = a.take_nodes();
        assert!(fresh, "limit 0 must never serve a recycled buffer");
        assert_eq!(a.reuses(), 0);
    }

    #[test]
    fn limit_bounds_retained_capacity() {
        let mut a = ExecArena::with_limit(64);
        let mut big = Vec::with_capacity(1024);
        big.push(NodeId::new(DocId(0), 1));
        a.give_nodes(big);
        assert_eq!(a.retained_bytes(), 0, "an over-budget give drops the buffer");
        let mut small = Vec::with_capacity(4);
        small.push(NodeId::new(DocId(0), 1));
        a.give_nodes(small);
        assert!(a.retained_bytes() > 0 && a.retained_bytes() <= 64);
    }

    #[test]
    fn reset_keeps_capacity_but_restarts_counters() {
        let mut a = ExecArena::with_limit(1 << 20);
        let (mut buf, _) = a.take_nodes();
        buf.push(NodeId::new(DocId(0), 1));
        a.give_nodes(buf);
        let parked = a.retained_bytes();
        a.reset();
        assert_eq!(a.retained_bytes(), parked, "reset must not free parked buffers");
        assert_eq!((a.reuses(), a.fallbacks()), (0, 0));
        assert_eq!(a.resets(), 1);
        assert_eq!(a.high_water(), parked);
        let (_, fresh) = a.take_nodes();
        assert!(!fresh, "capacity survives the reset");
    }

    /// The never-observable rule, end to end: a default arena and a
    /// disabled one produce byte-identical output and identical non-arena
    /// counters on both backends, and the default arena actually recycles.
    #[test]
    fn arena_execution_matches_the_disabled_seed_path() {
        use crate::exec::ExecCtx;
        use crate::output::serialize_results;

        let mut db = xmldb::Database::new();
        let people: String = (0..24)
            .map(|i| format!("<person id=\"{i}\"><name>p{i}</name><age>{}</age></person>", 18 + i))
            .collect();
        db.load_xml("a.xml", &format!("<site>{people}</site>")).unwrap();
        let queries = [
            "FOR $p IN document(\"a.xml\")//person RETURN $p/name",
            "FOR $p IN document(\"a.xml\")//person WHERE $p/age > 30 RETURN $p/name",
        ];
        for q in queries {
            let plan = crate::compile(q, &db).unwrap();
            let prog = crate::vm::lower(&plan).unwrap();
            let mut on = ExecCtx::new();
            let got = crate::execute_with_ctx(&db, &plan, &mut on).unwrap();
            let mut off = ExecCtx::new();
            off.arena = ExecArena::disabled();
            let want = crate::execute_with_ctx(&db, &plan, &mut off).unwrap();
            assert_eq!(
                serialize_results(&db, &got),
                serialize_results(&db, &want),
                "walker bytes diverged for {q}"
            );
            assert_eq!(
                on.stats.without_arena_counters(),
                off.stats.without_arena_counters(),
                "walker stats diverged for {q}"
            );
            assert!(on.arena.reuses() > 0, "default arena must recycle within a request: {q}");
            assert!(
                on.stats.fallback_allocs < off.stats.fallback_allocs,
                "arena must cut fresh buffer allocations: {q}"
            );

            let mut vm_on = ExecCtx::new();
            let vm_got = crate::vm::run(&db, &prog, &mut vm_on).unwrap();
            let mut vm_off = ExecCtx::new();
            vm_off.arena = ExecArena::disabled();
            let vm_want = crate::vm::run(&db, &prog, &mut vm_off).unwrap();
            assert_eq!(
                serialize_results(&db, &vm_got),
                serialize_results(&db, &vm_want),
                "vm bytes diverged for {q}"
            );
            assert_eq!(
                vm_on.stats.without_arena_counters(),
                vm_off.stats.without_arena_counters(),
                "vm stats diverged for {q}"
            );
            assert!(vm_on.arena.reuses() > 0, "vm arena must recycle within a request: {q}");
        }
    }

    #[test]
    fn typed_lists_are_independent() {
        let mut a = ExecArena::with_limit(1 << 20);
        let (mut f, _) = a.take_frame();
        f.push(Some(Vec::new()));
        a.give_frame(f);
        let (_, fresh) = a.take_trees();
        assert!(fresh, "a parked frame cannot serve a tree-list take");
        let (f2, fresh) = a.take_frame();
        assert!(!fresh);
        assert!(f2.is_empty());
    }
}
