//! Logical classes and their labels (paper §2.2, Definition 4).
//!
//! After an annotated-pattern-tree match, every node of every witness tree is
//! a member of at least one *logical class* — the set of data nodes that
//! matched one particular pattern-tree node. Classes are named by *logical
//! class labels* (LCLs): plan-wide unique integers handed out by the
//! translator. Operators reference nodes exclusively through LCLs, which is
//! what lets them treat heterogeneous witness trees as if they were
//! homogeneous (the "logical class reduction" of Definition 4).

use std::fmt;

/// A logical class label. Unique within a plan; assigned by the translator
/// (or manually when plans are built by hand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LclId(pub u32);

impl fmt::Display for LclId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.0)
    }
}

/// Monotone LCL generator used by the translator.
#[derive(Debug, Default)]
pub struct LclGen {
    next: u32,
}

impl LclGen {
    /// Starts counting from 1 (the paper's figures use 1-based labels).
    pub fn new() -> Self {
        LclGen { next: 1 }
    }

    /// Hands out the next fresh label.
    pub fn fresh(&mut self) -> LclId {
        let id = LclId(self.next);
        self.next += 1;
        id
    }

    /// Number of labels issued so far.
    pub fn issued(&self) -> u32 {
        self.next - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_monotone_and_one_based() {
        let mut g = LclGen::new();
        assert_eq!(g.fresh(), LclId(1));
        assert_eq!(g.fresh(), LclId(2));
        assert_eq!(g.issued(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(LclId(13).to_string(), "(13)");
    }
}
