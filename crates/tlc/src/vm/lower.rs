//! The lowering compiler: analyzer-verified [`Plan`] → flat [`Program`].
//!
//! Lowering is a post-order, left-to-right walk — the exact order the
//! tree-walking executor evaluates operators in — so a program replays the
//! tree walk's kernel invocation sequence instruction by instruction.
//! Because temporary node ids are minted in kernel invocation order
//! (paper §5.1, Property 4), this is what makes VM output byte-identical
//! to [`crate::execute_with_ctx`].
//!
//! Two lowering rules beyond the per-operator 1:1 mapping:
//!
//! 1. **Fusion.** A maximal Select/Filter/Project/DupElim run whose bottom
//!    is *not* a document-rooted Select has no cacheable level (see
//!    [`crate::match_chain_key`]) — the tree walker would never probe
//!    inside it. The whole run fuses into one [`Instr::Spine`] whose steps
//!    share a single rolling tree set: no per-operator register traffic,
//!    no per-level dispatch.
//! 2. **Compiled cache protocol.** A run that *does* bottom out at a
//!    document-rooted Select is cacheable at every level. Each level keeps
//!    its own register and canonical chain key (computed here, at compile
//!    time — the tree walker re-formats these strings per request), and
//!    the run is emitted as a probe bracket:
//!
//!    ```text
//!     0: probe k2 -> r2, hit -> 8     (top level first, like the walker)
//!     1: probe k1 -> r1, hit -> 6
//!     2: probe k0 -> r0, hit -> 4
//!     3: spine r0 <- match S[...]
//!     4: store k0 <- r0
//!     5: spine r1 <- r0: filter[...]
//!     6: store k1 <- r1
//!     7: spine r2 <- r1: project[...]
//!     8: store k2 <- r2
//!     9: return r2
//!    ```
//!
//!    A hit at level `j` jumps past level `j`'s store; the levels above
//!    recompute from the cached set and publish their own entries — the
//!    same probe/store sequence, hit/miss counts and cache content as the
//!    tree walker on every path, including "no cache attached" (probes
//!    fall through, stores are no-ops).

use super::{verify, Instr, KeyId, Program, RegId, SpineOp, VmError};
use crate::analyze::{analyze, PlanType};
use crate::exec::match_chain_key;
use crate::plan::Plan;

/// Compiles a plan into a verified [`Program`].
///
/// The plan is analyzed first ([`VmError::Analyze`] on failure), lowered,
/// and the result is run through the IR verifier before being returned —
/// an ill-formed program can never escape this function.
pub fn lower(plan: &Plan) -> Result<Program, VmError> {
    analyze(plan).map_err(VmError::Analyze)?;
    let mut c = Compiler::default();
    let result = c.lower_node(plan)?;
    c.instrs.push(Instr::Return { src: result });
    let prog = Program::new(c.instrs, c.keys, c.regs);
    verify::verify(&prog)?;
    Ok(prog)
}

#[derive(Default)]
struct Compiler {
    instrs: Vec<Instr>,
    keys: Vec<String>,
    regs: Vec<PlanType>,
}

fn is_chain_op(plan: &Plan) -> bool {
    matches!(
        plan,
        Plan::Select { .. } | Plan::Filter { .. } | Plan::Project { .. } | Plan::DupElim { .. }
    )
}

/// The [`SpineOp`] for one chain operator (its input is carried by the
/// rolling set, not the step).
fn spine_op(plan: &Plan) -> SpineOp {
    match plan {
        Plan::Select { input: None, apt } => SpineOp::Match(apt.clone()),
        Plan::Select { input: Some(_), apt } => SpineOp::Extend(apt.clone()),
        Plan::Filter { lcl, pred, mode, .. } => {
            SpineOp::Filter { lcl: *lcl, pred: pred.clone(), mode: *mode }
        }
        Plan::Project { keep, .. } => SpineOp::Project { keep: keep.clone() },
        Plan::DupElim { on, kind, .. } => SpineOp::DupElim { on: on.clone(), kind: *kind },
        _ => unreachable!("spine_op is only called on chain operators"),
    }
}

impl Compiler {
    /// Allocates the register that will hold `plan`'s result, recording the
    /// analyzer's type as the slot schema.
    fn alloc(&mut self, plan: &Plan) -> Result<RegId, VmError> {
        let t = analyze(plan).map_err(VmError::Analyze)?;
        if self.regs.len() >= u16::MAX as usize {
            return Err(VmError::Malformed {
                at: self.instrs.len(),
                reason: "register file overflow (more than 65534 operators)".to_string(),
            });
        }
        let id = RegId(self.regs.len() as u16);
        self.regs.push(t);
        Ok(id)
    }

    /// Interns a chain key, reusing an existing slot for repeated chains
    /// (e.g. the same Select in both branches of a self-join).
    fn intern(&mut self, key: String) -> Result<KeyId, VmError> {
        if let Some(i) = self.keys.iter().position(|k| *k == key) {
            return Ok(KeyId(i as u16));
        }
        if self.keys.len() >= u16::MAX as usize {
            return Err(VmError::Malformed {
                at: self.instrs.len(),
                reason: "chain-key pool overflow".to_string(),
            });
        }
        let id = KeyId(self.keys.len() as u16);
        self.keys.push(key);
        Ok(id)
    }

    fn lower_node(&mut self, plan: &Plan) -> Result<RegId, VmError> {
        match plan {
            p if is_chain_op(p) => self.lower_spine(p),
            Plan::Join { left, right, spec } => {
                let l = self.lower_node(left)?;
                let r = self.lower_node(right)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Join { left: l, right: r, spec: spec.clone(), dst });
                Ok(dst)
            }
            Plan::Aggregate { input, func, over, new_lcl } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Aggregate {
                    input,
                    func: *func,
                    over: *over,
                    new_lcl: *new_lcl,
                    dst,
                });
                Ok(dst)
            }
            Plan::Construct { input, spec } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Construct { input, spec: spec.clone(), dst });
                Ok(dst)
            }
            Plan::Sort { input, keys } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Sort { input, keys: keys.clone(), dst });
                Ok(dst)
            }
            Plan::Flatten { input, parent, child } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Flatten { input, parent: *parent, child: *child, dst });
                Ok(dst)
            }
            Plan::Shadow { input, parent, child } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Shadow { input, parent: *parent, child: *child, dst });
                Ok(dst)
            }
            Plan::Illuminate { input, lcl } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Illuminate { input, lcl: *lcl, dst });
                Ok(dst)
            }
            Plan::GroupBy { input, by, collect } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::GroupBy { input, by: *by, collect: *collect, dst });
                Ok(dst)
            }
            Plan::Materialize { input, lcls } => {
                let input = self.lower_node(input)?;
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Materialize { input, lcls: lcls.clone(), dst });
                Ok(dst)
            }
            Plan::Union { inputs, dedup_on } => {
                let mut regs = Vec::with_capacity(inputs.len());
                for p in inputs {
                    regs.push(self.lower_node(p)?);
                }
                let dst = self.alloc(plan)?;
                self.instrs.push(Instr::Union { inputs: regs, dedup_on: dedup_on.clone(), dst });
                Ok(dst)
            }
            _ => unreachable!("chain operators are handled above"),
        }
    }

    /// Lowers the maximal chain run ending at `top`.
    fn lower_spine(&mut self, top: &Plan) -> Result<RegId, VmError> {
        // Collect the run, then orient it bottom-up.
        let mut run: Vec<&Plan> = Vec::new();
        let mut cur = top;
        let base: Option<&Plan> = loop {
            run.push(cur);
            let input = match cur {
                Plan::Select { input, .. } => match input {
                    None => break None,
                    Some(i) => i.as_ref(),
                },
                Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::DupElim { input, .. } => input.as_ref(),
                _ => unreachable!("lower_spine is only called on chain operators"),
            };
            if is_chain_op(input) {
                cur = input;
            } else {
                break Some(input);
            }
        };
        run.reverse();
        match base {
            // No cacheable level anywhere in the run: fuse it whole.
            Some(b) => {
                let input = self.lower_node(b)?;
                let steps = run.iter().map(|p| spine_op(p)).collect();
                let dst = self.alloc(top)?;
                self.instrs.push(Instr::Spine { input: Some(input), steps, dst });
                Ok(dst)
            }
            None => self.lower_cacheable_chain(&run),
        }
    }

    /// Emits the probe bracket for a document-rooted chain (`run` is
    /// bottom-up; every level has a chain key by construction).
    fn lower_cacheable_chain(&mut self, run: &[&Plan]) -> Result<RegId, VmError> {
        let n = run.len();
        let mut regs = Vec::with_capacity(n);
        let mut keys = Vec::with_capacity(n);
        for node in run {
            regs.push(self.alloc(node)?);
            let key = match_chain_key(node).ok_or_else(|| VmError::Malformed {
                at: self.instrs.len(),
                reason: "document-rooted chain level without a chain key".to_string(),
            })?;
            keys.push(self.intern(key)?);
        }
        // Probes top-down (the walker checks the outermost key first), with
        // placeholder targets patched once each level's store lands.
        let mut probe_at = vec![0usize; n];
        for j in (0..n).rev() {
            probe_at[j] = self.instrs.len();
            self.instrs.push(Instr::Probe { key: keys[j], dst: regs[j], target: 0 });
        }
        for j in 0..n {
            let input = if j == 0 { None } else { Some(regs[j - 1]) };
            self.instrs.push(Instr::Spine { input, steps: vec![spine_op(run[j])], dst: regs[j] });
            self.instrs.push(Instr::Store { key: keys[j], src: regs[j] });
            let target = self.instrs.len() as u32;
            if let Instr::Probe { target: t, .. } = &mut self.instrs[probe_at[j]] {
                *t = target;
            }
        }
        Ok(regs[n - 1])
    }
}
