//! `vm` — a register IR and bytecode evaluator for verified TLC plans.
//!
//! The tree-walking executor ([`crate::exec`]) re-discovers the same facts
//! on every request: it dispatches over the [`Plan`] enum recursively,
//! rebuilds every match-cache chain key ([`crate::match_chain_key`] is a
//! string format per chain level), and threads intermediate `Vec<ResultTree>`
//! sets through the recursion. For a service whose workload is
//! compile-once/execute-many, all of that is per-request overhead on work
//! that is fixed at compile time.
//!
//! This module compiles an analyzer-verified plan once into a flat
//! [`Program`] — a `Vec<Instr>` over preallocated virtual registers — and
//! evaluates it with a non-recursive loop:
//!
//! * [`lower`] — the lowering compiler. Maximal
//!   Select→Filter→Project→DupElim runs become single composite
//!   [`Instr::Spine`] instructions (one rolling tree set moves through the
//!   fused steps, with no register traffic between stages), and
//!   match-cache interaction is compiled into explicit [`Instr::Probe`] /
//!   [`Instr::Store`] instructions whose canonical chain keys are computed
//!   **at compile time** and interned in the program.
//! * [`run`] — the register evaluator. It executes a
//!   program against a snapshot through the existing [`crate::ExecCtx`]
//!   (deadline ticks, match cache, [`crate::ExecStats`]), calling the very
//!   same operator kernels in [`crate::ops`] in the same order as the tree
//!   walker, so output — and cache content — is byte-identical.
//! * the IR verifier (`verify`) — every [`lower`] call re-runs the LC
//!   dataflow analysis over the lowered form before releasing the program:
//!   registers are checked for single assignment and move-once liveness,
//!   probe/store brackets for well-formed pairing and key agreement, and
//!   every register's recorded class schema (its [`PlanType`]) against a
//!   fresh [`fn@crate::analyze`] of the decompiled instruction stream. An
//!   ill-formed program can never be cached or executed.
//!
//! The per-register schema comes straight from the analyzer: register `rN`
//! carries the [`PlanType`] (classes with per-tree cardinality, root class,
//! ordering) of the subplan whose result it holds, which is what
//! [`Program::display`] prints under `.explain`.

mod eval;
mod lower;
mod verify;

pub use eval::run;
pub use lower::lower;

use crate::analyze::{AnalyzeError, PlanType};
use crate::logical_class::LclId;
use crate::ops::construct::ConstructItem;
use crate::ops::dupelim::DedupKind;
use crate::ops::filter::{FilterMode, FilterPred};
use crate::ops::join::JoinSpec;
use crate::ops::sort::SortKey;
use crate::pattern::Apt;
use crate::plan::Plan;
use std::fmt;
use xmldb::Database;
use xquery::AggFunc;

/// A virtual register: one slot holding a set of result trees. Registers
/// are single-assignment along the all-miss execution path and consumed
/// (moved out of) by the one instruction that reads them — except
/// [`Instr::Store`], which reads by reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegId(pub u16);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An index into the program's interned pool of canonical match-chain keys
/// (see [`crate::match_chain_key`]). Interning at compile time is a real
/// part of the win: the tree walker re-formats these strings per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyId(pub u16);

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// One fused step of an [`Instr::Spine`] instruction. The evaluator moves
/// a single rolling `Vec<ResultTree>` through the steps; no intermediate
/// register writes happen between them.
#[derive(Debug, Clone, PartialEq)]
pub enum SpineOp {
    /// Document-anchored Select — matches the APT against base data; the
    /// chain leaf (takes no input trees).
    Match(Apt),
    /// Class-anchored Select — extends the rolling tree set by matching
    /// the APT below its anchor class.
    Extend(Apt),
    /// Filter the rolling set.
    Filter {
        /// The tested class.
        lcl: LclId,
        /// The predicate.
        pred: FilterPred,
        /// Iteration mode.
        mode: FilterMode,
    },
    /// Project the rolling set onto `keep`.
    Project {
        /// Classes to keep.
        keep: Vec<LclId>,
    },
    /// Duplicate-eliminate the rolling set.
    DupElim {
        /// Key classes.
        on: Vec<LclId>,
        /// Identity vs content comparison.
        kind: DedupKind,
    },
}

/// One instruction of a lowered [`Program`].
///
/// Instructions execute in order except for [`Instr::Probe`], whose hit
/// path jumps forward past the instructions that would recompute (and
/// re-[`Instr::Store`]) the probed chain. The operator payloads are exactly
/// the [`Plan`] payloads — the evaluator calls the same [`crate::ops`]
/// kernels as the tree walker.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Consult the match cache for an interned chain key. On a hit the
    /// cached trees are written to `dst` and control jumps to `target`
    /// (the instruction after the corresponding [`Instr::Store`]); on a
    /// miss — or with no cache attached — control falls through into the
    /// instructions that compute the chain.
    Probe {
        /// The probed chain key.
        key: KeyId,
        /// Register receiving the cached trees on a hit.
        dst: RegId,
        /// Jump target (instruction index) on a hit.
        target: u32,
    },
    /// Publish `src` to the match cache under `key` (recording a miss).
    /// Reads `src` by reference — the register stays live for the next
    /// instruction.
    Store {
        /// The chain key to store under.
        key: KeyId,
        /// Register whose trees are published.
        src: RegId,
    },
    /// A fused Select→Filter→Project→DupElim run: the steps execute
    /// back-to-back over one rolling tree set.
    Spine {
        /// Input register; `None` when the first step is a
        /// [`SpineOp::Match`] chain leaf.
        input: Option<RegId>,
        /// The fused steps, bottom-up.
        steps: Vec<SpineOp>,
        /// Output register.
        dst: RegId,
    },
    /// Value join of two registers.
    Join {
        /// Left input register.
        left: RegId,
        /// Right input register.
        right: RegId,
        /// Join parameters.
        spec: JoinSpec,
        /// Output register.
        dst: RegId,
    },
    /// Aggregate-function application.
    Aggregate {
        /// Input register.
        input: RegId,
        /// The function.
        func: AggFunc,
        /// The aggregated class.
        over: LclId,
        /// Label of the created result node.
        new_lcl: LclId,
        /// Output register.
        dst: RegId,
    },
    /// Result construction.
    Construct {
        /// Input register.
        input: RegId,
        /// The construct-pattern tree.
        spec: Vec<ConstructItem>,
        /// Output register.
        dst: RegId,
    },
    /// Sort by class values.
    Sort {
        /// Input register.
        input: RegId,
        /// ORDER BY keys.
        keys: Vec<SortKey>,
        /// Output register.
        dst: RegId,
    },
    /// Flatten restructuring (Definition 5).
    Flatten {
        /// Input register.
        input: RegId,
        /// Parent class.
        parent: LclId,
        /// Child class.
        child: LclId,
        /// Output register.
        dst: RegId,
    },
    /// Shadow restructuring (Definition 6).
    Shadow {
        /// Input register.
        input: RegId,
        /// Parent class.
        parent: LclId,
        /// Child class.
        child: LclId,
        /// Output register.
        dst: RegId,
    },
    /// Illuminate restructuring (Definition 7).
    Illuminate {
        /// Input register.
        input: RegId,
        /// The re-illuminated class.
        lcl: LclId,
        /// Output register.
        dst: RegId,
    },
    /// Grouping procedure.
    GroupBy {
        /// Input register.
        input: RegId,
        /// The (singleton) grouping key class.
        by: LclId,
        /// The collected class.
        collect: LclId,
        /// Output register.
        dst: RegId,
    },
    /// Subtree materialization.
    Materialize {
        /// Input register.
        input: RegId,
        /// Classes whose member subtrees are materialized.
        lcls: Vec<LclId>,
        /// Output register.
        dst: RegId,
    },
    /// Branch concatenation (with optional dedup).
    Union {
        /// Input registers, one per branch, in branch order.
        inputs: Vec<RegId>,
        /// Dedup key classes (empty for plain concatenation).
        dedup_on: Vec<LclId>,
        /// Output register.
        dst: RegId,
    },
    /// End of program: the value of `src` is the plan's result.
    Return {
        /// Register holding the result trees.
        src: RegId,
    },
}

impl Instr {
    /// The register this instruction writes, if any.
    pub fn dst(&self) -> Option<RegId> {
        match self {
            Instr::Probe { dst, .. }
            | Instr::Spine { dst, .. }
            | Instr::Join { dst, .. }
            | Instr::Aggregate { dst, .. }
            | Instr::Construct { dst, .. }
            | Instr::Sort { dst, .. }
            | Instr::Flatten { dst, .. }
            | Instr::Shadow { dst, .. }
            | Instr::Illuminate { dst, .. }
            | Instr::GroupBy { dst, .. }
            | Instr::Materialize { dst, .. }
            | Instr::Union { dst, .. } => Some(*dst),
            Instr::Store { .. } | Instr::Return { .. } => None,
        }
    }

    /// The registers this instruction consumes (moves out of). `Store`
    /// reads by reference and is deliberately not listed here.
    pub fn consumes(&self) -> Vec<RegId> {
        match self {
            Instr::Probe { .. } | Instr::Store { .. } => Vec::new(),
            Instr::Spine { input, .. } => input.iter().copied().collect(),
            Instr::Join { left, right, .. } => vec![*left, *right],
            Instr::Aggregate { input, .. }
            | Instr::Construct { input, .. }
            | Instr::Sort { input, .. }
            | Instr::Flatten { input, .. }
            | Instr::Shadow { input, .. }
            | Instr::Illuminate { input, .. }
            | Instr::GroupBy { input, .. }
            | Instr::Materialize { input, .. } => vec![*input],
            Instr::Union { inputs, .. } => inputs.clone(),
            Instr::Return { src } => vec![*src],
        }
    }
}

/// A compile error from [`lower`] — either the source plan failed the LC
/// dataflow analysis, or the lowered instruction stream failed the IR
/// verifier (which would be a compiler bug; the verifier exists so such a
/// program can never be cached or executed).
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// The source plan failed static analysis; nothing was lowered.
    Analyze(AnalyzeError),
    /// The lowered program failed IR verification at instruction `at`.
    Malformed {
        /// Index of the offending instruction.
        at: usize,
        /// What the verifier found.
        reason: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Analyze(e) => write!(f, "plan failed LC dataflow analysis: {e}"),
            VmError::Malformed { at, reason } => {
                write!(f, "ill-formed program at instruction {at}: {reason}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// A verified, executable register program — the unit the service caches
/// alongside the plan it was lowered from.
///
/// A `Program` is immutable and self-contained: instructions, the interned
/// chain-key pool, and the per-register [`PlanType`] schema. [`lower`] is
/// the only constructor and it verifies before returning, so every
/// `Program` in existence passed the IR verifier.
#[derive(Debug, Clone)]
pub struct Program {
    instrs: Vec<Instr>,
    keys: Vec<String>,
    regs: Vec<PlanType>,
}

impl Program {
    pub(crate) fn new(instrs: Vec<Instr>, keys: Vec<String>, regs: Vec<PlanType>) -> Program {
        Program { instrs, keys, regs }
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The interned canonical chain key for `key`.
    pub fn key(&self, key: KeyId) -> &str {
        &self.keys[key.0 as usize]
    }

    /// Number of interned chain keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of virtual registers the evaluator preallocates.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// The analyzer-derived schema of register `reg`: the classes (with
    /// per-tree cardinality), root class, and ordering of the tree set it
    /// holds.
    pub fn reg_type(&self, reg: RegId) -> &PlanType {
        &self.regs[reg.0 as usize]
    }

    /// The type of the program's result (the `Return` register's schema).
    pub fn result_type(&self) -> &PlanType {
        let ret = self.instrs.last().expect("verified programs end in Return");
        match ret {
            Instr::Return { src } => self.reg_type(*src),
            _ => unreachable!("verified programs end in Return"),
        }
    }

    /// Total operator steps fused into `Spine` instructions.
    pub fn fused_steps(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Spine { steps, .. } => steps.len(),
                _ => 0,
            })
            .sum()
    }

    /// The instruction listing with register types — the `.explain` IR
    /// section. Tag names render through `db`'s interner when given.
    pub fn display(&self, db: Option<&Database>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "program: {} instruction(s), {} register(s), {} chain key(s), {} fused step(s)\n",
            self.instrs.len(),
            self.regs.len(),
            self.keys.len(),
            self.fused_steps()
        ));
        for (i, instr) in self.instrs.iter().enumerate() {
            out.push_str(&format!("{i:>3}: {}\n", render_instr(instr, db)));
        }
        out.push_str("registers:\n");
        for (i, t) in self.regs.iter().enumerate() {
            let classes: Vec<String> =
                t.classes.iter().map(|(l, c)| format!("{l}:{c:?}")).collect();
            out.push_str(&format!(
                "  r{i}: {} root={} order={:?}\n",
                if classes.is_empty() { "(none)".to_string() } else { classes.join(" ") },
                t.root.map_or_else(|| "(none)".to_string(), |r| r.to_string()),
                t.order
            ));
        }
        out
    }
}

fn render_spine_op(op: &SpineOp, db: Option<&Database>) -> String {
    match op {
        SpineOp::Match(apt) => format!("match S[{}]", apt.display(db)),
        SpineOp::Extend(apt) => format!("extend S[{}]", apt.display(db)),
        SpineOp::Filter { lcl, mode, .. } => format!("filter[{lcl} mode={mode:?}]"),
        SpineOp::Project { keep } => format!("project[{} class(es)]", keep.len()),
        SpineOp::DupElim { on, kind } => format!("dupelim[{kind:?} on {} class(es)]", on.len()),
    }
}

fn render_instr(instr: &Instr, db: Option<&Database>) -> String {
    match instr {
        Instr::Probe { key, dst, target } => format!("probe {key} -> {dst}, hit -> {target}"),
        Instr::Store { key, src } => format!("store {key} <- {src}"),
        Instr::Spine { input, steps, dst } => {
            let steps: Vec<String> = steps.iter().map(|s| render_spine_op(s, db)).collect();
            match input {
                Some(r) => format!("spine {dst} <- {r}: {}", steps.join(" | ")),
                None => format!("spine {dst} <- {}", steps.join(" | ")),
            }
        }
        Instr::Join { left, right, spec, dst } => {
            format!(
                "join {dst} <- {left}, {right} [root={} right={}]",
                spec.root_lcl, spec.right_mspec
            )
        }
        Instr::Aggregate { input, func, over, new_lcl, dst } => {
            format!("aggregate {dst} <- {input} [{}({over}) -> {new_lcl}]", func.name())
        }
        Instr::Construct { input, spec, dst } => {
            format!("construct {dst} <- {input} [{} item(s)]", spec.len())
        }
        Instr::Sort { input, keys, dst } => {
            format!("sort {dst} <- {input} [{} key(s)]", keys.len())
        }
        Instr::Flatten { input, parent, child, dst } => {
            format!("flatten {dst} <- {input} [{parent}, {child}]")
        }
        Instr::Shadow { input, parent, child, dst } => {
            format!("shadow {dst} <- {input} [{parent}, {child}]")
        }
        Instr::Illuminate { input, lcl, dst } => format!("illuminate {dst} <- {input} [{lcl}]"),
        Instr::GroupBy { input, by, collect, dst } => {
            format!("groupby {dst} <- {input} [by {by} collect {collect}]")
        }
        Instr::Materialize { input, lcls, dst } => {
            format!("materialize {dst} <- {input} [{} class(es)]", lcls.len())
        }
        Instr::Union { inputs, dedup_on, dst } => {
            let regs: Vec<String> = inputs.iter().map(|r| r.to_string()).collect();
            format!("union {dst} <- {} [dedup on {} class(es)]", regs.join(", "), dedup_on.len())
        }
        Instr::Return { src } => format!("return {src}"),
    }
}

impl Program {
    /// Reconstructs the plan this program computes. `Probe`/`Store` are
    /// cache transparency and contribute no operators, so lowering a plan
    /// and decompiling the program round-trips (fused spines unfold back
    /// into the operator chain they were built from).
    pub fn decompile(&self) -> Result<Plan, VmError> {
        verify::decompile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecCtx, MatchCache};
    use crate::tree::ResultTree;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};
    use xmldb::Database;

    const XML: &str = r#"<site><people>
        <person id="person0"><name>Ann</name><age>30</age></person>
        <person id="person1"><name>Bo</name><age>10</age></person>
        <person id="person2"><name>Cy</name><age>41</age></person>
      </people>
      <regions><item><name>Ann</name><price>12</price></item>
               <item><name>Dee</name><price>7</price></item></regions></site>"#;

    fn db() -> Database {
        let mut db = Database::new();
        db.load_xml("auction.xml", XML).unwrap();
        db
    }

    const QUERIES: &[&str] = &[
        r#"FOR $p IN document("auction.xml")//person WHERE $p/age > 20 RETURN $p/name"#,
        r#"FOR $p IN document("auction.xml")//person RETURN $p"#,
        r#"FOR $p IN document("auction.xml")//person
           FOR $i IN document("auction.xml")//item
           WHERE $p/name = $i/name RETURN $i/price"#,
        r#"FOR $p IN document("auction.xml")//person
           WHERE $p/age > 5
           ORDER BY $p/name RETURN $p/name"#,
        r#"FOR $p IN document("auction.xml")//person
           WHERE count($p/age) > 0 RETURN $p/name"#,
    ];

    /// Toy in-memory MatchCache recording its own content.
    #[derive(Default)]
    struct MapCache {
        map: Mutex<HashMap<String, Arc<Vec<ResultTree>>>>,
    }

    impl MapCache {
        fn keys(&self) -> Vec<String> {
            let mut keys: Vec<String> = self.map.lock().unwrap().keys().cloned().collect();
            keys.sort();
            keys
        }
    }

    impl MatchCache for MapCache {
        fn get(&self, key: &str) -> Option<Arc<Vec<ResultTree>>> {
            self.map.lock().unwrap().get(key).cloned()
        }
        fn put(&self, key: &str, trees: &[ResultTree]) {
            self.map.lock().unwrap().insert(key.to_string(), Arc::new(trees.to_vec()));
        }
    }

    #[test]
    fn lowering_round_trips_through_decompile() {
        let db = db();
        for q in QUERIES {
            let plan = crate::compile(q, &db).unwrap();
            let prog = lower(&plan).unwrap();
            assert_eq!(prog.decompile().unwrap(), plan, "round-trip failed for {q}");
        }
    }

    #[test]
    fn vm_output_and_stats_match_the_tree_walker() {
        let db = db();
        for q in QUERIES {
            let plan = crate::compile(q, &db).unwrap();
            let prog = lower(&plan).unwrap();
            let mut walk = ExecCtx::new();
            let expected = crate::execute_with_ctx(&db, &plan, &mut walk).unwrap();
            let mut vm = ExecCtx::new();
            let got = run(&db, &prog, &mut vm).unwrap();
            assert_eq!(
                crate::serialize_results(&db, &got),
                crate::serialize_results(&db, &expected),
                "byte mismatch for {q}"
            );
            // Arena counters legitimately differ between backends (the VM
            // takes a register frame from the arena); everything else must
            // match exactly.
            assert_eq!(
                vm.stats.without_arena_counters(),
                walk.stats.without_arena_counters(),
                "stats diverged for {q}"
            );
        }
    }

    #[test]
    fn vm_match_cache_protocol_mirrors_the_tree_walker() {
        let db = db();
        for q in QUERIES {
            let plan = crate::compile(q, &db).unwrap();
            let prog = lower(&plan).unwrap();
            let walk_cache = Arc::new(MapCache::default());
            let vm_cache = Arc::new(MapCache::default());
            for pass in 0..2 {
                let mut walk = ExecCtx::new().with_cache(walk_cache.clone());
                let expected = crate::execute_with_ctx(&db, &plan, &mut walk).unwrap();
                let mut vm = ExecCtx::new().with_cache(vm_cache.clone());
                let got = run(&db, &prog, &mut vm).unwrap();
                assert_eq!(
                    crate::serialize_results(&db, &got),
                    crate::serialize_results(&db, &expected),
                    "byte mismatch for {q} (pass {pass})"
                );
                assert_eq!(
                    vm.stats.without_arena_counters(),
                    walk.stats.without_arena_counters(),
                    "cache stats diverged for {q} (pass {pass})"
                );
            }
            assert_eq!(vm_cache.keys(), walk_cache.keys(), "cache content diverged for {q}");
        }
    }

    #[test]
    fn warm_probe_skips_all_pattern_matching() {
        let db = db();
        let plan = crate::compile(QUERIES[0], &db).unwrap();
        let prog = lower(&plan).unwrap();
        let cache = Arc::new(MapCache::default());
        let mut cold = ExecCtx::new().with_cache(cache.clone());
        run(&db, &prog, &mut cold).unwrap();
        assert!(cold.stats.match_cache_misses > 0);
        let mut warm = ExecCtx::new().with_cache(cache);
        run(&db, &prog, &mut warm).unwrap();
        assert!(warm.stats.match_cache_hits > 0, "second run must hit");
        assert_eq!(warm.stats.pattern_matches, 0, "a top-of-chain hit skips all matching");
    }

    #[test]
    fn expired_deadline_aborts_the_program() {
        let db = db();
        let plan = crate::compile(QUERIES[0], &db).unwrap();
        let prog = lower(&plan).unwrap();
        let mut ctx = ExecCtx::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(run(&db, &prog, &mut ctx).unwrap_err(), crate::Error::DeadlineExceeded);
        let mut ok = ExecCtx::with_deadline(Instant::now() + Duration::from_secs(60));
        assert!(run(&db, &prog, &mut ok).is_ok());
    }

    #[test]
    fn cacheable_chains_compile_to_probe_brackets() {
        let db = db();
        let plan = crate::compile(QUERIES[0], &db).unwrap();
        let prog = lower(&plan).unwrap();
        let probes = prog.instrs().iter().filter(|i| matches!(i, Instr::Probe { .. })).count();
        let stores = prog.instrs().iter().filter(|i| matches!(i, Instr::Store { .. })).count();
        assert!(probes > 0, "document-rooted chain must compile probes");
        assert_eq!(probes, stores, "every probe brackets exactly one store");
        assert_eq!(prog.key_count(), crate::match_chain_keys(&plan).len());
        let listing = prog.display(Some(&db));
        assert!(listing.contains("probe"), "{listing}");
        assert!(listing.contains("store"), "{listing}");
        assert!(listing.contains("registers:"), "{listing}");
        assert!(listing.contains("return"), "{listing}");
    }

    #[test]
    fn verifier_rejects_tampered_programs() {
        let db = db();
        let plan = crate::compile(QUERIES[0], &db).unwrap();
        let good = lower(&plan).unwrap();
        assert!(verify::verify(&good).is_ok());

        // Dropping the Return leaves dead registers and no result.
        let mut truncated = good.clone();
        truncated.instrs.pop();
        assert!(matches!(verify::verify(&truncated), Err(VmError::Malformed { .. })));

        // An empty program is ill-formed.
        let empty = Program::new(Vec::new(), Vec::new(), Vec::new());
        assert!(matches!(verify::verify(&empty), Err(VmError::Malformed { .. })));

        // Rebinding a store to the wrong key breaks the probe bracket.
        let mut wrong_key = good.clone();
        if wrong_key.keys.len() >= 2 {
            for instr in &mut wrong_key.instrs {
                if let Instr::Store { key, .. } = instr {
                    *key = KeyId((key.0 + 1) % wrong_key.keys.len() as u16);
                }
            }
            assert!(matches!(verify::verify(&wrong_key), Err(VmError::Malformed { .. })));
        }

        // Swapping a spine's destination register breaks SSA/type checks.
        let mut swapped = good;
        for instr in &mut swapped.instrs {
            if let Instr::Spine { dst, .. } = instr {
                *dst = RegId((dst.0 + 1) % swapped.regs.len() as u16);
            }
        }
        assert!(matches!(verify::verify(&swapped), Err(VmError::Malformed { .. })));
    }
}
