//! The register evaluator: runs a verified [`Program`] against a snapshot.
//!
//! One flat loop over the instruction stream, a preallocated register
//! frame, and the same operator kernels ([`crate::ops`]) the tree walker
//! calls — in the same order, so temporary-id minting and therefore output
//! bytes are identical. The deadline is checked at every instruction
//! boundary and at every fused spine step (kernels additionally tick
//! through [`ExecCtx::tick`] exactly as they do under the walker).
//!
//! Register values move: an instruction that reads a register takes its
//! tree set out rather than cloning it ([`Instr::Store`] alone reads by
//! reference, since the stored set stays live for the next level of its
//! chain). The verifier's liveness pass guarantees every read finds a
//! value on every reachable path.

use super::{Instr, Program, RegId, SpineOp};
use crate::error::{Error, Result};
use crate::exec::ExecCtx;
use crate::ops;
use crate::tree::ResultTree;
use xmldb::Database;

fn take(regs: &mut [Option<Vec<ResultTree>>], r: RegId) -> Result<Vec<ResultTree>> {
    regs[r.0 as usize]
        .take()
        .ok_or_else(|| Error::Unsupported(format!("vm: read of empty register {r}")))
}

fn peek(regs: &[Option<Vec<ResultTree>>], r: RegId) -> Result<&[ResultTree]> {
    regs[r.0 as usize]
        .as_deref()
        .ok_or_else(|| Error::Unsupported(format!("vm: read of empty register {r}")))
}

/// Executes `prog` under a caller-supplied context — the VM counterpart of
/// [`crate::execute_with_ctx`]. Deadline, match cache and counters all live
/// on `ctx`; cache probe/store sequencing (and hence
/// [`crate::ExecStats::match_cache_hits`] / misses and the resulting cache
/// content) matches the tree walker's exactly.
pub fn run(db: &Database, prog: &Program, ctx: &mut ExecCtx) -> Result<Vec<ResultTree>> {
    let instrs = prog.instrs();
    // Register frames are recycled through the context's arena: one take
    // per run instead of a fresh allocation. Error paths just drop the
    // frame (errors discard; see `crate::arena`).
    let mut regs = ctx.alloc_frame();
    regs.resize_with(prog.reg_count(), || None);
    let mut ip = 0usize;
    while ip < instrs.len() {
        ctx.check_deadline()?;
        match &instrs[ip] {
            Instr::Probe { key, dst, target } => {
                if let Some(cache) = ctx.cache.clone() {
                    if let Some(hit) = cache.get(prog.key(*key)) {
                        ctx.stats.match_cache_hits += 1;
                        // Clone the trees out of the shared entry into an
                        // arena-recycled list (mirrors the walker's hit
                        // path, so bytes and counters stay identical).
                        let mut out = ctx.alloc_trees();
                        out.extend(hit.iter().cloned());
                        regs[dst.0 as usize] = Some(out);
                        ip = *target as usize;
                        continue;
                    }
                }
            }
            Instr::Store { key, src } => {
                if let Some(cache) = ctx.cache.clone() {
                    let trees = peek(&regs, *src)?;
                    ctx.stats.match_cache_misses += 1;
                    cache.put(prog.key(*key), trees);
                }
            }
            Instr::Spine { input, steps, dst } => {
                let mut rolling = match input {
                    Some(r) => take(&mut regs, *r)?,
                    None => Vec::new(),
                };
                for step in steps {
                    ctx.check_deadline()?;
                    rolling = match step {
                        SpineOp::Match(apt) | SpineOp::Extend(apt) => {
                            ops::select(db, apt, rolling, ctx)?
                        }
                        SpineOp::Filter { lcl, pred, mode } => {
                            ops::filter(db, rolling, *lcl, pred, *mode, &mut ctx.stats)
                        }
                        SpineOp::Project { keep } => ops::project(rolling, keep, &mut ctx.stats),
                        SpineOp::DupElim { on, kind } => {
                            ops::duplicate_elimination(db, rolling, on, *kind, &mut ctx.stats)?
                        }
                    };
                }
                regs[dst.0 as usize] = Some(rolling);
            }
            Instr::Join { left, right, spec, dst } => {
                let l = take(&mut regs, *left)?;
                let r = take(&mut regs, *right)?;
                let out = ops::join(db, l, r, spec, &mut ctx.tmp, &mut ctx.stats)?;
                regs[dst.0 as usize] = Some(out);
            }
            Instr::Aggregate { input, func, over, new_lcl, dst } => {
                let inputs = take(&mut regs, *input)?;
                let out = ops::aggregate(
                    db,
                    inputs,
                    *func,
                    *over,
                    *new_lcl,
                    &mut ctx.tmp,
                    &mut ctx.stats,
                );
                regs[dst.0 as usize] = Some(out);
            }
            Instr::Construct { input, spec, dst } => {
                let inputs = take(&mut regs, *input)?;
                let out = ops::construct(db, inputs, spec, &mut ctx.tmp, &mut ctx.stats)?;
                regs[dst.0 as usize] = Some(out);
            }
            Instr::Sort { input, keys, dst } => {
                let inputs = take(&mut regs, *input)?;
                regs[dst.0 as usize] = Some(ops::sort_by_keys(db, inputs, keys));
            }
            Instr::Flatten { input, parent, child, dst } => {
                let inputs = take(&mut regs, *input)?;
                let out = ops::flatten(inputs, *parent, *child, &mut ctx.stats)?;
                regs[dst.0 as usize] = Some(out);
            }
            Instr::Shadow { input, parent, child, dst } => {
                let inputs = take(&mut regs, *input)?;
                let out = ops::shadow(inputs, *parent, *child, &mut ctx.stats)?;
                regs[dst.0 as usize] = Some(out);
            }
            Instr::Illuminate { input, lcl, dst } => {
                let inputs = take(&mut regs, *input)?;
                regs[dst.0 as usize] = Some(ops::illuminate(inputs, *lcl, &mut ctx.stats));
            }
            Instr::GroupBy { input, by, collect, dst } => {
                let inputs = take(&mut regs, *input)?;
                let out = ops::grouping_procedure(db, inputs, *by, *collect, &mut ctx.stats)?;
                regs[dst.0 as usize] = Some(out);
            }
            Instr::Materialize { input, lcls, dst } => {
                let inputs = take(&mut regs, *input)?;
                regs[dst.0 as usize] = Some(ops::materialize(db, inputs, lcls, &mut ctx.stats));
            }
            Instr::Union { inputs, dedup_on, dst } => {
                let mut branches = Vec::with_capacity(inputs.len());
                for r in inputs {
                    branches.push(take(&mut regs, *r)?);
                }
                let out = ops::union_all(db, branches, dedup_on, &mut ctx.stats)?;
                regs[dst.0 as usize] = Some(out);
            }
            Instr::Return { src } => {
                let out = take(&mut regs, *src);
                ctx.free_frame(regs);
                return out;
            }
        }
        ip += 1;
    }
    Err(Error::Unsupported("vm: program fell off the end without Return".to_string()))
}
