//! The IR verifier: re-runs the LC dataflow analysis over a lowered
//! program before it can be cached or executed.
//!
//! Three passes, all on the straight-line "every probe misses" path (the
//! path that computes everything — hit paths only skip recomputation of
//! values the structural pass proves are stored under the same key):
//!
//! 1. **Structural** — a single trailing `Return`; every register and key
//!    index in range; every `Probe` jumps forward to the instruction just
//!    past a `Store` of the *same key* whose source is the probe's own
//!    destination register (so the hit path lands exactly where the miss
//!    path would have left the same value in the same register).
//! 2. **Liveness** — registers are single-assignment, written before read,
//!    and moved out exactly once; `Store` reads non-destructively; no
//!    register is dead. Together with pass 1 this guarantees the evaluator
//!    can never read an empty slot on any path.
//! 3. **Semantic** — the instruction stream is decompiled back into a
//!    [`Plan`] (probes and stores are cache transparency and contribute no
//!    operators) and every register's rebuilt subplan is re-analyzed with
//!    [`crate::analyze::analyze`]; its classes, cardinalities, root and
//!    ordering must equal the [`crate::PlanType`] recorded as the slot's
//!    schema, and every `Store`'s interned key must equal the
//!    [`crate::match_chain_key`] of the subplan it publishes.

use super::{Instr, Program, RegId, SpineOp, VmError};
use crate::analyze::analyze;
use crate::exec::match_chain_key;
use crate::plan::Plan;
use std::collections::HashMap;

pub(crate) fn verify(prog: &Program) -> Result<(), VmError> {
    structural(prog)?;
    liveness(prog)?;
    semantic(prog).map(|_| ())
}

/// Rebuilds the plan the program computes (used by the semantic pass and
/// by tests asserting lowering round-trips).
pub(crate) fn decompile(prog: &Program) -> Result<Plan, VmError> {
    structural(prog)?;
    semantic(prog)
}

fn err(at: usize, reason: impl Into<String>) -> VmError {
    VmError::Malformed { at, reason: reason.into() }
}

fn structural(prog: &Program) -> Result<(), VmError> {
    let instrs = prog.instrs();
    if instrs.is_empty() {
        return Err(err(0, "empty program"));
    }
    if !matches!(instrs.last(), Some(Instr::Return { .. })) {
        return Err(err(instrs.len() - 1, "program does not end in Return"));
    }
    let regs = prog.reg_count();
    let keys = prog.key_count();
    let reg_ok = |r: RegId| (r.0 as usize) < regs;
    for (i, instr) in instrs.iter().enumerate() {
        if let Some(d) = instr.dst() {
            if !reg_ok(d) {
                return Err(err(i, format!("destination register {d} out of range")));
            }
        }
        for r in instr.consumes() {
            if !reg_ok(r) {
                return Err(err(i, format!("source register {r} out of range")));
            }
        }
        match instr {
            Instr::Return { .. } if i + 1 != instrs.len() => {
                return Err(err(i, "Return before the end of the program"));
            }
            Instr::Store { key, src } => {
                if key.0 as usize >= keys {
                    return Err(err(i, format!("key {key} out of range")));
                }
                if !reg_ok(*src) {
                    return Err(err(i, format!("source register {src} out of range")));
                }
            }
            Instr::Probe { key, dst, target } => {
                if key.0 as usize >= keys {
                    return Err(err(i, format!("key {key} out of range")));
                }
                let t = *target as usize;
                if t <= i || t >= instrs.len() {
                    return Err(err(i, format!("probe target {t} is not a forward instruction")));
                }
                match &instrs[t - 1] {
                    Instr::Store { key: sk, src } if sk == key && src == dst => {}
                    _ => {
                        return Err(err(
                            i,
                            "probe hit path does not land just past a Store of the same \
                             key into the same register",
                        ));
                    }
                }
            }
            Instr::Spine { input, steps, .. } => {
                if steps.is_empty() {
                    return Err(err(i, "spine with no steps"));
                }
                if let Some(r) = input {
                    if !reg_ok(*r) {
                        return Err(err(i, format!("source register {r} out of range")));
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn liveness(prog: &Program) -> Result<(), VmError> {
    let n = prog.reg_count();
    let mut written = vec![false; n];
    let mut consumed = vec![false; n];
    for (i, instr) in prog.instrs().iter().enumerate() {
        for r in instr.consumes() {
            let r = r.0 as usize;
            if !written[r] {
                return Err(err(i, format!("r{r} read before it is written")));
            }
            if consumed[r] {
                return Err(err(i, format!("r{r} read after it was moved out")));
            }
            consumed[r] = true;
        }
        if let Instr::Store { src, .. } = instr {
            let r = src.0 as usize;
            if !written[r] || consumed[r] {
                return Err(err(i, format!("store reads r{r} which holds no live value")));
            }
        }
        // A probe's write only happens on the hit path; the miss path must
        // produce the same register itself, so probes don't count here.
        if !matches!(instr, Instr::Probe { .. }) {
            if let Some(d) = instr.dst() {
                let d = d.0 as usize;
                if written[d] {
                    return Err(err(i, format!("second write to r{d} (registers are SSA)")));
                }
                written[d] = true;
            }
        }
    }
    for r in 0..n {
        if !written[r] {
            return Err(err(0, format!("r{r} is never written on the miss path")));
        }
        if !consumed[r] {
            return Err(err(0, format!("r{r} is written but never consumed (dead value)")));
        }
    }
    Ok(())
}

fn take_plan(bound: &mut HashMap<u16, Plan>, r: RegId, at: usize) -> Result<Plan, VmError> {
    bound.remove(&r.0).ok_or_else(|| err(at, format!("instruction consumes unbound register {r}")))
}

fn semantic(prog: &Program) -> Result<Plan, VmError> {
    let mut bound: HashMap<u16, Plan> = HashMap::new();
    for (i, instr) in prog.instrs().iter().enumerate() {
        let plan =
            match instr {
                Instr::Probe { .. } => continue,
                Instr::Store { key, src } => {
                    let p = bound
                        .get(&src.0)
                        .ok_or_else(|| err(i, format!("store reads unbound register {src}")))?;
                    let want = match_chain_key(p).ok_or_else(|| {
                        err(i, "store publishes a plan that is not a cacheable chain")
                    })?;
                    if want != prog.key(*key) {
                        return Err(err(
                            i,
                            format!("stored key {:?} != chain key {want:?}", prog.key(*key)),
                        ));
                    }
                    continue;
                }
                Instr::Spine { input, steps, .. } => {
                    let mut acc: Option<Plan> = match input {
                        Some(r) => Some(take_plan(&mut bound, *r, i)?),
                        None => None,
                    };
                    for step in steps {
                        acc =
                            Some(match step {
                                SpineOp::Match(apt) => {
                                    if acc.is_some() {
                                        return Err(err(i, "Match step atop a live rolling set"));
                                    }
                                    Plan::Select { input: None, apt: apt.clone() }
                                }
                                SpineOp::Extend(apt) => Plan::Select {
                                    input: Some(Box::new(acc.take().ok_or_else(|| {
                                        err(i, "Extend step with no rolling set")
                                    })?)),
                                    apt: apt.clone(),
                                },
                                SpineOp::Filter { lcl, pred, mode } => Plan::Filter {
                                    input: Box::new(acc.take().ok_or_else(|| {
                                        err(i, "Filter step with no rolling set")
                                    })?),
                                    lcl: *lcl,
                                    pred: pred.clone(),
                                    mode: *mode,
                                },
                                SpineOp::Project { keep } => Plan::Project {
                                    input: Box::new(acc.take().ok_or_else(|| {
                                        err(i, "Project step with no rolling set")
                                    })?),
                                    keep: keep.clone(),
                                },
                                SpineOp::DupElim { on, kind } => Plan::DupElim {
                                    input: Box::new(acc.take().ok_or_else(|| {
                                        err(i, "DupElim step with no rolling set")
                                    })?),
                                    on: on.clone(),
                                    kind: *kind,
                                },
                            });
                    }
                    acc.ok_or_else(|| err(i, "spine produced no plan"))?
                }
                Instr::Join { left, right, spec, .. } => Plan::Join {
                    left: Box::new(take_plan(&mut bound, *left, i)?),
                    right: Box::new(take_plan(&mut bound, *right, i)?),
                    spec: spec.clone(),
                },
                Instr::Aggregate { input, func, over, new_lcl, .. } => Plan::Aggregate {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    func: *func,
                    over: *over,
                    new_lcl: *new_lcl,
                },
                Instr::Construct { input, spec, .. } => Plan::Construct {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    spec: spec.clone(),
                },
                Instr::Sort { input, keys, .. } => Plan::Sort {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    keys: keys.clone(),
                },
                Instr::Flatten { input, parent, child, .. } => Plan::Flatten {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    parent: *parent,
                    child: *child,
                },
                Instr::Shadow { input, parent, child, .. } => Plan::Shadow {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    parent: *parent,
                    child: *child,
                },
                Instr::Illuminate { input, lcl, .. } => Plan::Illuminate {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    lcl: *lcl,
                },
                Instr::GroupBy { input, by, collect, .. } => Plan::GroupBy {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    by: *by,
                    collect: *collect,
                },
                Instr::Materialize { input, lcls, .. } => Plan::Materialize {
                    input: Box::new(take_plan(&mut bound, *input, i)?),
                    lcls: lcls.clone(),
                },
                Instr::Union { inputs, dedup_on, .. } => {
                    let mut branches = Vec::with_capacity(inputs.len());
                    for r in inputs {
                        branches.push(take_plan(&mut bound, *r, i)?);
                    }
                    Plan::Union { inputs: branches, dedup_on: dedup_on.clone() }
                }
                Instr::Return { src } => {
                    let p = take_plan(&mut bound, *src, i)?;
                    if !bound.is_empty() {
                        return Err(err(i, "registers still bound at Return (dead values)"));
                    }
                    return Ok(p);
                }
            };
        let dst = instr.dst().expect("value-producing instructions have a destination");
        let t = analyze(&plan)
            .map_err(|e| err(i, format!("decompiled subplan fails LC analysis: {e}")))?;
        let want = prog.reg_type(dst);
        if t.classes != want.classes
            || t.seen != want.seen
            || t.root != want.root
            || t.order != want.order
        {
            return Err(err(
                i,
                format!(
                    "register {dst} schema mismatch: lowered as {want:?}, re-analysis gives {t:?}"
                ),
            ));
        }
        bound.insert(dst.0, plan);
    }
    Err(err(prog.instrs().len().saturating_sub(1), "program has no Return"))
}
