//! Generator-backed verifier tests: every seeded random plan the generator
//! emits verifies and executes, and systematic class-breaking mutations of
//! those same plans are rejected by `tlc::verify`.
//!
//! The hand-written negative tests in `analyze.rs` pin down *which* error
//! each violation maps to; these tests sweep the same properties across
//! hundreds of structurally diverse plans from the shared seeded generator
//! (the supply side of `experiments lintcheck`), so the verifier's negative
//! surface is exercised far from the handful of shapes a human thinks of.
//!
//! Debug builds additionally run the runtime conformance oracle inside
//! every `tlc::execute`, so the positive sweep below doubles as a
//! cardinality/order soundness check of the analyzer.

use tlc::ops::dupelim::DedupKind;
use tlc::ops::join::JoinSpec;
use tlc::ops::sort::SortKey;
use tlc::{LclId, MSpec, Plan};

const SEEDS: u64 = 120;

fn database() -> xmldb::Database {
    xmark::auction_database(0.0005)
}

/// A class label no generated plan uses: the generator hands out ids from a
/// small monotone counter, so anything this large is unbound everywhere.
const UNBOUND: LclId = LclId(900_000);

#[test]
fn every_random_plan_verifies_and_executes() {
    let db = database();
    for seed in 0..SEEDS {
        let gp = tlc::random_plan(&db, "auction.xml", seed);
        tlc::verify(&gp.plan).expect("generated plan must verify");
        // In debug builds this also runs check_conformance on every subplan.
        tlc::execute(&db, &gp.plan)
            .unwrap_or_else(|e| panic!("seed {seed}: execution failed: {e}"));
    }
}

#[test]
fn sorting_on_an_unbound_class_is_rejected() {
    let db = database();
    for seed in 0..SEEDS {
        let plan = tlc::random_plan(&db, "auction.xml", seed).plan;
        let bad = Plan::Sort {
            input: Box::new(plan),
            keys: vec![SortKey { lcl: UNBOUND, descending: false }],
        };
        assert!(tlc::verify(&bad).is_err(), "seed {seed}: unbound sort key accepted");
    }
}

#[test]
fn dupelim_on_an_unbound_class_is_rejected() {
    let db = database();
    for seed in 0..SEEDS {
        let plan = tlc::random_plan(&db, "auction.xml", seed).plan;
        let bad =
            Plan::DupElim { input: Box::new(plan), on: vec![UNBOUND], kind: DedupKind::NodeId };
        assert!(tlc::verify(&bad).is_err(), "seed {seed}: unbound dedup key accepted");
    }
}

#[test]
fn self_join_without_relabeling_is_rejected() {
    let db = database();
    for seed in 0..SEEDS {
        let plan = tlc::random_plan(&db, "auction.xml", seed).plan;
        let bad = Plan::Join {
            left: Box::new(plan.clone()),
            right: Box::new(plan),
            spec: JoinSpec {
                root_lcl: UNBOUND,
                right_mspec: MSpec::One,
                pred: None,
                dedup_right_on: None,
            },
        };
        assert!(
            tlc::verify(&bad).is_err(),
            "seed {seed}: self-join with colliding classes accepted"
        );
    }
}

#[test]
fn relabeling_a_pattern_node_onto_its_root_is_rejected() {
    let db = database();
    let mut mutated = 0u32;
    for seed in 0..SEEDS {
        let mut plan = tlc::random_plan(&db, "auction.xml", seed).plan;
        // Relabel the first document select's first pattern node with the
        // class of its own anchor — a duplicate definition in one APT.
        if !collide_first_select(&mut plan) {
            continue;
        }
        assert!(tlc::verify(&plan).is_err(), "seed {seed}: duplicate class label accepted");
        mutated += 1;
    }
    assert!(mutated > SEEDS as u32 / 2, "mutation applied to too few plans: {mutated}");
}

/// Sets the first pattern node's class equal to the anchor class of the
/// first document-rooted select found; returns whether a mutation landed.
fn collide_first_select(plan: &mut Plan) -> bool {
    match plan {
        Plan::Select { apt, input } => {
            if let tlc::AptRoot::Document { lcl, .. } = &apt.root {
                let root = *lcl;
                if let Some(node) = apt.nodes.first_mut() {
                    node.lcl = root;
                    return true;
                }
            }
            input.as_deref_mut().is_some_and(collide_first_select)
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => collide_first_select(input),
        Plan::Join { left, right, .. } => collide_first_select(left) || collide_first_select(right),
        Plan::Union { inputs, .. } => inputs.iter_mut().any(collide_first_select),
    }
}
