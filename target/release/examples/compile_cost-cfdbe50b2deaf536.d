/root/repo/target/release/examples/compile_cost-cfdbe50b2deaf536.d: crates/bench/examples/compile_cost.rs

/root/repo/target/release/examples/compile_cost-cfdbe50b2deaf536: crates/bench/examples/compile_cost.rs

crates/bench/examples/compile_cost.rs:
