/root/repo/target/release/deps/xmark-75c47f3c369bf20c.d: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

/root/repo/target/release/deps/libxmark-75c47f3c369bf20c.rlib: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

/root/repo/target/release/deps/libxmark-75c47f3c369bf20c.rmeta: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

crates/xmark/src/lib.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/rng.rs:
crates/xmark/src/schema.rs:
crates/xmark/src/words.rs:
