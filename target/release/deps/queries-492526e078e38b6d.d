/root/repo/target/release/deps/queries-492526e078e38b6d.d: crates/queries/src/lib.rs crates/queries/src/suite.rs

/root/repo/target/release/deps/libqueries-492526e078e38b6d.rlib: crates/queries/src/lib.rs crates/queries/src/suite.rs

/root/repo/target/release/deps/libqueries-492526e078e38b6d.rmeta: crates/queries/src/lib.rs crates/queries/src/suite.rs

crates/queries/src/lib.rs:
crates/queries/src/suite.rs:
