/root/repo/target/release/deps/baselines-6e81b815bfe13358.d: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

/root/repo/target/release/deps/libbaselines-6e81b815bfe13358.rlib: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

/root/repo/target/release/deps/libbaselines-6e81b815bfe13358.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gtp.rs:
crates/baselines/src/nav.rs:
crates/baselines/src/tax.rs:
