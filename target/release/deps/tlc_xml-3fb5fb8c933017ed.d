/root/repo/target/release/deps/tlc_xml-3fb5fb8c933017ed.d: src/lib.rs

/root/repo/target/release/deps/libtlc_xml-3fb5fb8c933017ed.rlib: src/lib.rs

/root/repo/target/release/deps/libtlc_xml-3fb5fb8c933017ed.rmeta: src/lib.rs

src/lib.rs:
