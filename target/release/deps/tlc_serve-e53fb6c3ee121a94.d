/root/repo/target/release/deps/tlc_serve-e53fb6c3ee121a94.d: crates/service/src/bin/tlc_serve.rs

/root/repo/target/release/deps/tlc_serve-e53fb6c3ee121a94: crates/service/src/bin/tlc_serve.rs

crates/service/src/bin/tlc_serve.rs:
