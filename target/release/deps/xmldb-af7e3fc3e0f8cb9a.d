/root/repo/target/release/deps/xmldb-af7e3fc3e0f8cb9a.d: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

/root/repo/target/release/deps/libxmldb-af7e3fc3e0f8cb9a.rlib: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

/root/repo/target/release/deps/libxmldb-af7e3fc3e0f8cb9a.rmeta: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

crates/xmldb/src/lib.rs:
crates/xmldb/src/check.rs:
crates/xmldb/src/database.rs:
crates/xmldb/src/document.rs:
crates/xmldb/src/error.rs:
crates/xmldb/src/index.rs:
crates/xmldb/src/node.rs:
crates/xmldb/src/parse.rs:
crates/xmldb/src/persist.rs:
crates/xmldb/src/serialize.rs:
crates/xmldb/src/tag.rs:
