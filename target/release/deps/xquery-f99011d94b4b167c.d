/root/repo/target/release/deps/xquery-f99011d94b4b167c.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

/root/repo/target/release/deps/libxquery-f99011d94b4b167c.rlib: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

/root/repo/target/release/deps/libxquery-f99011d94b4b167c.rmeta: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/pretty.rs:
