/root/repo/target/release/deps/tlc_shell-5edaae60bb9bda80.d: crates/cli/src/main.rs

/root/repo/target/release/deps/tlc_shell-5edaae60bb9bda80: crates/cli/src/main.rs

crates/cli/src/main.rs:
