/root/repo/target/release/deps/service-bc79ce037bf2b525.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

/root/repo/target/release/deps/libservice-bc79ce037bf2b525.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

/root/repo/target/release/deps/libservice-bc79ce037bf2b525.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/metrics.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
