/root/repo/target/release/deps/bench-95b920abb4157afc.d: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libbench-95b920abb4157afc.rlib: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libbench-95b920abb4157afc.rmeta: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/concurrent.rs:
crates/bench/src/micro.rs:
