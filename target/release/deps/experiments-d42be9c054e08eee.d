/root/repo/target/release/deps/experiments-d42be9c054e08eee.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-d42be9c054e08eee: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
