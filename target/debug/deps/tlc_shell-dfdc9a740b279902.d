/root/repo/target/debug/deps/tlc_shell-dfdc9a740b279902.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtlc_shell-dfdc9a740b279902.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
