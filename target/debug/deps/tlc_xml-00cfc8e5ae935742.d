/root/repo/target/debug/deps/tlc_xml-00cfc8e5ae935742.d: src/lib.rs

/root/repo/target/debug/deps/tlc_xml-00cfc8e5ae935742: src/lib.rs

src/lib.rs:
