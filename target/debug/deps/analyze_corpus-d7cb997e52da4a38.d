/root/repo/target/debug/deps/analyze_corpus-d7cb997e52da4a38.d: tests/analyze_corpus.rs Cargo.toml

/root/repo/target/debug/deps/libanalyze_corpus-d7cb997e52da4a38.rmeta: tests/analyze_corpus.rs Cargo.toml

tests/analyze_corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
