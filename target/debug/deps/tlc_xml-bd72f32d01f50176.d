/root/repo/target/debug/deps/tlc_xml-bd72f32d01f50176.d: src/lib.rs

/root/repo/target/debug/deps/libtlc_xml-bd72f32d01f50176.rlib: src/lib.rs

/root/repo/target/debug/deps/libtlc_xml-bd72f32d01f50176.rmeta: src/lib.rs

src/lib.rs:
