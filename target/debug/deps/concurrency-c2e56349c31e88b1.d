/root/repo/target/debug/deps/concurrency-c2e56349c31e88b1.d: crates/service/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-c2e56349c31e88b1.rmeta: crates/service/tests/concurrency.rs Cargo.toml

crates/service/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
