/root/repo/target/debug/deps/fig17-a751b73dbe77172e.d: crates/bench/benches/fig17.rs Cargo.toml

/root/repo/target/debug/deps/libfig17-a751b73dbe77172e.rmeta: crates/bench/benches/fig17.rs Cargo.toml

crates/bench/benches/fig17.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
