/root/repo/target/debug/deps/bench-78ef1142b4b41918.d: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs Cargo.toml

/root/repo/target/debug/deps/libbench-78ef1142b4b41918.rmeta: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/concurrent.rs:
crates/bench/src/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
