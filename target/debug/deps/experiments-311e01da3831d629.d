/root/repo/target/debug/deps/experiments-311e01da3831d629.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-311e01da3831d629: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
