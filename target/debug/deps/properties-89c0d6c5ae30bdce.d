/root/repo/target/debug/deps/properties-89c0d6c5ae30bdce.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-89c0d6c5ae30bdce.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
