/root/repo/target/debug/deps/concurrency-410519ffde5b22d2.d: crates/service/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-410519ffde5b22d2: crates/service/tests/concurrency.rs

crates/service/tests/concurrency.rs:
