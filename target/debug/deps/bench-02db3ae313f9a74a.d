/root/repo/target/debug/deps/bench-02db3ae313f9a74a.d: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/bench-02db3ae313f9a74a: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/concurrent.rs:
crates/bench/src/micro.rs:
