/root/repo/target/debug/deps/tlc-085149a73471e5c0.d: crates/tlc/src/lib.rs crates/tlc/src/analyze.rs crates/tlc/src/error.rs crates/tlc/src/exec.rs crates/tlc/src/guide.rs crates/tlc/src/logical_class.rs crates/tlc/src/matching.rs crates/tlc/src/ops/mod.rs crates/tlc/src/ops/aggregate.rs crates/tlc/src/ops/construct.rs crates/tlc/src/ops/dupelim.rs crates/tlc/src/ops/filter.rs crates/tlc/src/ops/grouping.rs crates/tlc/src/ops/join.rs crates/tlc/src/ops/materialize.rs crates/tlc/src/ops/project.rs crates/tlc/src/ops/restructure.rs crates/tlc/src/ops/select.rs crates/tlc/src/ops/sort.rs crates/tlc/src/ops/union_all.rs crates/tlc/src/optimizer.rs crates/tlc/src/output.rs crates/tlc/src/pattern.rs crates/tlc/src/physical/mod.rs crates/tlc/src/physical/structural.rs crates/tlc/src/physical/twigstack.rs crates/tlc/src/physical/valjoin.rs crates/tlc/src/plan.rs crates/tlc/src/rewrite.rs crates/tlc/src/stats.rs crates/tlc/src/translate.rs crates/tlc/src/tree.rs

/root/repo/target/debug/deps/libtlc-085149a73471e5c0.rlib: crates/tlc/src/lib.rs crates/tlc/src/analyze.rs crates/tlc/src/error.rs crates/tlc/src/exec.rs crates/tlc/src/guide.rs crates/tlc/src/logical_class.rs crates/tlc/src/matching.rs crates/tlc/src/ops/mod.rs crates/tlc/src/ops/aggregate.rs crates/tlc/src/ops/construct.rs crates/tlc/src/ops/dupelim.rs crates/tlc/src/ops/filter.rs crates/tlc/src/ops/grouping.rs crates/tlc/src/ops/join.rs crates/tlc/src/ops/materialize.rs crates/tlc/src/ops/project.rs crates/tlc/src/ops/restructure.rs crates/tlc/src/ops/select.rs crates/tlc/src/ops/sort.rs crates/tlc/src/ops/union_all.rs crates/tlc/src/optimizer.rs crates/tlc/src/output.rs crates/tlc/src/pattern.rs crates/tlc/src/physical/mod.rs crates/tlc/src/physical/structural.rs crates/tlc/src/physical/twigstack.rs crates/tlc/src/physical/valjoin.rs crates/tlc/src/plan.rs crates/tlc/src/rewrite.rs crates/tlc/src/stats.rs crates/tlc/src/translate.rs crates/tlc/src/tree.rs

/root/repo/target/debug/deps/libtlc-085149a73471e5c0.rmeta: crates/tlc/src/lib.rs crates/tlc/src/analyze.rs crates/tlc/src/error.rs crates/tlc/src/exec.rs crates/tlc/src/guide.rs crates/tlc/src/logical_class.rs crates/tlc/src/matching.rs crates/tlc/src/ops/mod.rs crates/tlc/src/ops/aggregate.rs crates/tlc/src/ops/construct.rs crates/tlc/src/ops/dupelim.rs crates/tlc/src/ops/filter.rs crates/tlc/src/ops/grouping.rs crates/tlc/src/ops/join.rs crates/tlc/src/ops/materialize.rs crates/tlc/src/ops/project.rs crates/tlc/src/ops/restructure.rs crates/tlc/src/ops/select.rs crates/tlc/src/ops/sort.rs crates/tlc/src/ops/union_all.rs crates/tlc/src/optimizer.rs crates/tlc/src/output.rs crates/tlc/src/pattern.rs crates/tlc/src/physical/mod.rs crates/tlc/src/physical/structural.rs crates/tlc/src/physical/twigstack.rs crates/tlc/src/physical/valjoin.rs crates/tlc/src/plan.rs crates/tlc/src/rewrite.rs crates/tlc/src/stats.rs crates/tlc/src/translate.rs crates/tlc/src/tree.rs

crates/tlc/src/lib.rs:
crates/tlc/src/analyze.rs:
crates/tlc/src/error.rs:
crates/tlc/src/exec.rs:
crates/tlc/src/guide.rs:
crates/tlc/src/logical_class.rs:
crates/tlc/src/matching.rs:
crates/tlc/src/ops/mod.rs:
crates/tlc/src/ops/aggregate.rs:
crates/tlc/src/ops/construct.rs:
crates/tlc/src/ops/dupelim.rs:
crates/tlc/src/ops/filter.rs:
crates/tlc/src/ops/grouping.rs:
crates/tlc/src/ops/join.rs:
crates/tlc/src/ops/materialize.rs:
crates/tlc/src/ops/project.rs:
crates/tlc/src/ops/restructure.rs:
crates/tlc/src/ops/select.rs:
crates/tlc/src/ops/sort.rs:
crates/tlc/src/ops/union_all.rs:
crates/tlc/src/optimizer.rs:
crates/tlc/src/output.rs:
crates/tlc/src/pattern.rs:
crates/tlc/src/physical/mod.rs:
crates/tlc/src/physical/structural.rs:
crates/tlc/src/physical/twigstack.rs:
crates/tlc/src/physical/valjoin.rs:
crates/tlc/src/plan.rs:
crates/tlc/src/rewrite.rs:
crates/tlc/src/stats.rs:
crates/tlc/src/translate.rs:
crates/tlc/src/tree.rs:
