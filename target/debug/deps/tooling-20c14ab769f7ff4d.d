/root/repo/target/debug/deps/tooling-20c14ab769f7ff4d.d: tests/tooling.rs Cargo.toml

/root/repo/target/debug/deps/libtooling-20c14ab769f7ff4d.rmeta: tests/tooling.rs Cargo.toml

tests/tooling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
