/root/repo/target/debug/deps/ablation_twigstack-b4026bd1f5687a38.d: crates/bench/benches/ablation_twigstack.rs Cargo.toml

/root/repo/target/debug/deps/libablation_twigstack-b4026bd1f5687a38.rmeta: crates/bench/benches/ablation_twigstack.rs Cargo.toml

crates/bench/benches/ablation_twigstack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
