/root/repo/target/debug/deps/experiments-5a64f814086cad61.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-5a64f814086cad61: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
