/root/repo/target/debug/deps/plan_cache-a5a3e320fb470a46.d: crates/service/tests/plan_cache.rs Cargo.toml

/root/repo/target/debug/deps/libplan_cache-a5a3e320fb470a46.rmeta: crates/service/tests/plan_cache.rs Cargo.toml

crates/service/tests/plan_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
