/root/repo/target/debug/deps/tlc_shell-7a909ab2aef4cade.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tlc_shell-7a909ab2aef4cade: crates/cli/src/main.rs

crates/cli/src/main.rs:
