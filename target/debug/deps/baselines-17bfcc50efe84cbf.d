/root/repo/target/debug/deps/baselines-17bfcc50efe84cbf.d: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-17bfcc50efe84cbf.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/gtp.rs:
crates/baselines/src/nav.rs:
crates/baselines/src/tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
