/root/repo/target/debug/deps/fragment_limits-a8b2b83b1d4c7e31.d: tests/fragment_limits.rs Cargo.toml

/root/repo/target/debug/deps/libfragment_limits-a8b2b83b1d4c7e31.rmeta: tests/fragment_limits.rs Cargo.toml

tests/fragment_limits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
