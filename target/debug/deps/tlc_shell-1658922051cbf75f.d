/root/repo/target/debug/deps/tlc_shell-1658922051cbf75f.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtlc_shell-1658922051cbf75f.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
