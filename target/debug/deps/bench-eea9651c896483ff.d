/root/repo/target/debug/deps/bench-eea9651c896483ff.d: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libbench-eea9651c896483ff.rlib: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libbench-eea9651c896483ff.rmeta: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/concurrent.rs:
crates/bench/src/micro.rs:
