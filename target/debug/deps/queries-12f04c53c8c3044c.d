/root/repo/target/debug/deps/queries-12f04c53c8c3044c.d: crates/queries/src/lib.rs crates/queries/src/suite.rs

/root/repo/target/debug/deps/queries-12f04c53c8c3044c: crates/queries/src/lib.rs crates/queries/src/suite.rs

crates/queries/src/lib.rs:
crates/queries/src/suite.rs:
