/root/repo/target/debug/deps/xmark-e77c15deebdcaf5a.d: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

/root/repo/target/debug/deps/libxmark-e77c15deebdcaf5a.rlib: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

/root/repo/target/debug/deps/libxmark-e77c15deebdcaf5a.rmeta: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

crates/xmark/src/lib.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/rng.rs:
crates/xmark/src/schema.rs:
crates/xmark/src/words.rs:
