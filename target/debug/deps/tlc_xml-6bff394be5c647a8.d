/root/repo/target/debug/deps/tlc_xml-6bff394be5c647a8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtlc_xml-6bff394be5c647a8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
