/root/repo/target/debug/deps/queries-d58c20bdaecf395e.d: crates/queries/src/lib.rs crates/queries/src/suite.rs

/root/repo/target/debug/deps/libqueries-d58c20bdaecf395e.rlib: crates/queries/src/lib.rs crates/queries/src/suite.rs

/root/repo/target/debug/deps/libqueries-d58c20bdaecf395e.rmeta: crates/queries/src/lib.rs crates/queries/src/suite.rs

crates/queries/src/lib.rs:
crates/queries/src/suite.rs:
