/root/repo/target/debug/deps/analyze_mutations-ad5dc4b4685edfa0.d: tests/analyze_mutations.rs

/root/repo/target/debug/deps/analyze_mutations-ad5dc4b4685edfa0: tests/analyze_mutations.rs

tests/analyze_mutations.rs:
