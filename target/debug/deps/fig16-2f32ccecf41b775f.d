/root/repo/target/debug/deps/fig16-2f32ccecf41b775f.d: crates/bench/benches/fig16.rs Cargo.toml

/root/repo/target/debug/deps/libfig16-2f32ccecf41b775f.rmeta: crates/bench/benches/fig16.rs Cargo.toml

crates/bench/benches/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
