/root/repo/target/debug/deps/xquery-79192b6a56ad9b6c.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs Cargo.toml

/root/repo/target/debug/deps/libxquery-79192b6a56ad9b6c.rmeta: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs Cargo.toml

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/pretty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
