/root/repo/target/debug/deps/tlc_xml-e37c3f95e842e443.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtlc_xml-e37c3f95e842e443.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
