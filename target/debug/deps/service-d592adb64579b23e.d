/root/repo/target/debug/deps/service-d592adb64579b23e.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

/root/repo/target/debug/deps/libservice-d592adb64579b23e.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

/root/repo/target/debug/deps/libservice-d592adb64579b23e.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/metrics.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
