/root/repo/target/debug/deps/tooling-0f3867d9462165bf.d: tests/tooling.rs

/root/repo/target/debug/deps/tooling-0f3867d9462165bf: tests/tooling.rs

tests/tooling.rs:
