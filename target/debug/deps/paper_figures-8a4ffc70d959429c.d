/root/repo/target/debug/deps/paper_figures-8a4ffc70d959429c.d: tests/paper_figures.rs

/root/repo/target/debug/deps/paper_figures-8a4ffc70d959429c: tests/paper_figures.rs

tests/paper_figures.rs:
