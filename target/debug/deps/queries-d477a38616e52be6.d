/root/repo/target/debug/deps/queries-d477a38616e52be6.d: crates/queries/src/lib.rs crates/queries/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libqueries-d477a38616e52be6.rmeta: crates/queries/src/lib.rs crates/queries/src/suite.rs Cargo.toml

crates/queries/src/lib.rs:
crates/queries/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
