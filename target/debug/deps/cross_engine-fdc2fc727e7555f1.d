/root/repo/target/debug/deps/cross_engine-fdc2fc727e7555f1.d: tests/cross_engine.rs

/root/repo/target/debug/deps/cross_engine-fdc2fc727e7555f1: tests/cross_engine.rs

tests/cross_engine.rs:
