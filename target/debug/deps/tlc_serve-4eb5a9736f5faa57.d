/root/repo/target/debug/deps/tlc_serve-4eb5a9736f5faa57.d: crates/service/src/bin/tlc_serve.rs Cargo.toml

/root/repo/target/debug/deps/libtlc_serve-4eb5a9736f5faa57.rmeta: crates/service/src/bin/tlc_serve.rs Cargo.toml

crates/service/src/bin/tlc_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
