/root/repo/target/debug/deps/paper_figures-d234b3dcdc67dc68.d: tests/paper_figures.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_figures-d234b3dcdc67dc68.rmeta: tests/paper_figures.rs Cargo.toml

tests/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
