/root/repo/target/debug/deps/xmark-31642cba36bf8f54.d: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs Cargo.toml

/root/repo/target/debug/deps/libxmark-31642cba36bf8f54.rmeta: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs Cargo.toml

crates/xmark/src/lib.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/rng.rs:
crates/xmark/src/schema.rs:
crates/xmark/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
