/root/repo/target/debug/deps/xmark-1c3a35ad2eb0a164.d: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs Cargo.toml

/root/repo/target/debug/deps/libxmark-1c3a35ad2eb0a164.rmeta: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs Cargo.toml

crates/xmark/src/lib.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/rng.rs:
crates/xmark/src/schema.rs:
crates/xmark/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
