/root/repo/target/debug/deps/store_check-fb79e85c8b590257.d: tests/store_check.rs

/root/repo/target/debug/deps/store_check-fb79e85c8b590257: tests/store_check.rs

tests/store_check.rs:
