/root/repo/target/debug/deps/store_check-c53faaea7a764055.d: tests/store_check.rs Cargo.toml

/root/repo/target/debug/deps/libstore_check-c53faaea7a764055.rmeta: tests/store_check.rs Cargo.toml

tests/store_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
