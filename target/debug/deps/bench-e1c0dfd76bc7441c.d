/root/repo/target/debug/deps/bench-e1c0dfd76bc7441c.d: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs Cargo.toml

/root/repo/target/debug/deps/libbench-e1c0dfd76bc7441c.rmeta: crates/bench/src/lib.rs crates/bench/src/concurrent.rs crates/bench/src/micro.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/concurrent.rs:
crates/bench/src/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
