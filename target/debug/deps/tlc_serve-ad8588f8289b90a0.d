/root/repo/target/debug/deps/tlc_serve-ad8588f8289b90a0.d: crates/service/src/bin/tlc_serve.rs

/root/repo/target/debug/deps/tlc_serve-ad8588f8289b90a0: crates/service/src/bin/tlc_serve.rs

crates/service/src/bin/tlc_serve.rs:
