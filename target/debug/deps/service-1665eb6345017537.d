/root/repo/target/debug/deps/service-1665eb6345017537.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

/root/repo/target/debug/deps/service-1665eb6345017537: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/metrics.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
