/root/repo/target/debug/deps/tlc_shell-f5668ffc0f503a28.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tlc_shell-f5668ffc0f503a28: crates/cli/src/main.rs

crates/cli/src/main.rs:
