/root/repo/target/debug/deps/service-242cee81eff16ea3.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libservice-242cee81eff16ea3.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/metrics.rs crates/service/src/pool.rs crates/service/src/protocol.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/metrics.rs:
crates/service/src/pool.rs:
crates/service/src/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
