/root/repo/target/debug/deps/xmark-a940cb1a87b6661f.d: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

/root/repo/target/debug/deps/xmark-a940cb1a87b6661f: crates/xmark/src/lib.rs crates/xmark/src/gen.rs crates/xmark/src/rng.rs crates/xmark/src/schema.rs crates/xmark/src/words.rs

crates/xmark/src/lib.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/rng.rs:
crates/xmark/src/schema.rs:
crates/xmark/src/words.rs:
