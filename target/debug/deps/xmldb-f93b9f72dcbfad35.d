/root/repo/target/debug/deps/xmldb-f93b9f72dcbfad35.d: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

/root/repo/target/debug/deps/libxmldb-f93b9f72dcbfad35.rlib: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

/root/repo/target/debug/deps/libxmldb-f93b9f72dcbfad35.rmeta: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

crates/xmldb/src/lib.rs:
crates/xmldb/src/check.rs:
crates/xmldb/src/database.rs:
crates/xmldb/src/document.rs:
crates/xmldb/src/error.rs:
crates/xmldb/src/index.rs:
crates/xmldb/src/node.rs:
crates/xmldb/src/parse.rs:
crates/xmldb/src/persist.rs:
crates/xmldb/src/serialize.rs:
crates/xmldb/src/tag.rs:
