/root/repo/target/debug/deps/fragment_limits-5ee7e6bfb3d2c24f.d: tests/fragment_limits.rs

/root/repo/target/debug/deps/fragment_limits-5ee7e6bfb3d2c24f: tests/fragment_limits.rs

tests/fragment_limits.rs:
