/root/repo/target/debug/deps/xmldb-ea50b72cefbba5c7.d: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs Cargo.toml

/root/repo/target/debug/deps/libxmldb-ea50b72cefbba5c7.rmeta: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs Cargo.toml

crates/xmldb/src/lib.rs:
crates/xmldb/src/check.rs:
crates/xmldb/src/database.rs:
crates/xmldb/src/document.rs:
crates/xmldb/src/error.rs:
crates/xmldb/src/index.rs:
crates/xmldb/src/node.rs:
crates/xmldb/src/parse.rs:
crates/xmldb/src/persist.rs:
crates/xmldb/src/serialize.rs:
crates/xmldb/src/tag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
