/root/repo/target/debug/deps/xquery-b6c0d74c28318ed3.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

/root/repo/target/debug/deps/xquery-b6c0d74c28318ed3: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/pretty.rs:
