/root/repo/target/debug/deps/xmldb-696444c42bba04a5.d: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

/root/repo/target/debug/deps/xmldb-696444c42bba04a5: crates/xmldb/src/lib.rs crates/xmldb/src/check.rs crates/xmldb/src/database.rs crates/xmldb/src/document.rs crates/xmldb/src/error.rs crates/xmldb/src/index.rs crates/xmldb/src/node.rs crates/xmldb/src/parse.rs crates/xmldb/src/persist.rs crates/xmldb/src/serialize.rs crates/xmldb/src/tag.rs

crates/xmldb/src/lib.rs:
crates/xmldb/src/check.rs:
crates/xmldb/src/database.rs:
crates/xmldb/src/document.rs:
crates/xmldb/src/error.rs:
crates/xmldb/src/index.rs:
crates/xmldb/src/node.rs:
crates/xmldb/src/parse.rs:
crates/xmldb/src/persist.rs:
crates/xmldb/src/serialize.rs:
crates/xmldb/src/tag.rs:
