/root/repo/target/debug/deps/baselines-e1040f48ab058807.d: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

/root/repo/target/debug/deps/baselines-e1040f48ab058807: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gtp.rs:
crates/baselines/src/nav.rs:
crates/baselines/src/tax.rs:
