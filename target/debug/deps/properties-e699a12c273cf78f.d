/root/repo/target/debug/deps/properties-e699a12c273cf78f.d: tests/properties.rs

/root/repo/target/debug/deps/properties-e699a12c273cf78f: tests/properties.rs

tests/properties.rs:
