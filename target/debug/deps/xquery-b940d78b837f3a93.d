/root/repo/target/debug/deps/xquery-b940d78b837f3a93.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs Cargo.toml

/root/repo/target/debug/deps/libxquery-b940d78b837f3a93.rmeta: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs Cargo.toml

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/pretty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
