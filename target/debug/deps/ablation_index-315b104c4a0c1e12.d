/root/repo/target/debug/deps/ablation_index-315b104c4a0c1e12.d: crates/bench/benches/ablation_index.rs Cargo.toml

/root/repo/target/debug/deps/libablation_index-315b104c4a0c1e12.rmeta: crates/bench/benches/ablation_index.rs Cargo.toml

crates/bench/benches/ablation_index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
