/root/repo/target/debug/deps/xquery-2ae3432b09c828a4.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

/root/repo/target/debug/deps/libxquery-2ae3432b09c828a4.rlib: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

/root/repo/target/debug/deps/libxquery-2ae3432b09c828a4.rmeta: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/pretty.rs

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/pretty.rs:
