/root/repo/target/debug/deps/ablation_nestjoin-db001e2bdfadc7ca.d: crates/bench/benches/ablation_nestjoin.rs Cargo.toml

/root/repo/target/debug/deps/libablation_nestjoin-db001e2bdfadc7ca.rmeta: crates/bench/benches/ablation_nestjoin.rs Cargo.toml

crates/bench/benches/ablation_nestjoin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
