/root/repo/target/debug/deps/tlc_serve-8c52ec169ac92bd0.d: crates/service/src/bin/tlc_serve.rs

/root/repo/target/debug/deps/tlc_serve-8c52ec169ac92bd0: crates/service/src/bin/tlc_serve.rs

crates/service/src/bin/tlc_serve.rs:
