/root/repo/target/debug/deps/tlc_shell-e07330f52678a32d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tlc_shell-e07330f52678a32d: crates/cli/src/main.rs

crates/cli/src/main.rs:
