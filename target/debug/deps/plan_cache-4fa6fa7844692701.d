/root/repo/target/debug/deps/plan_cache-4fa6fa7844692701.d: crates/service/tests/plan_cache.rs

/root/repo/target/debug/deps/plan_cache-4fa6fa7844692701: crates/service/tests/plan_cache.rs

crates/service/tests/plan_cache.rs:
