/root/repo/target/debug/deps/analyze_mutations-f297ff8ff928a2f8.d: tests/analyze_mutations.rs Cargo.toml

/root/repo/target/debug/deps/libanalyze_mutations-f297ff8ff928a2f8.rmeta: tests/analyze_mutations.rs Cargo.toml

tests/analyze_mutations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
