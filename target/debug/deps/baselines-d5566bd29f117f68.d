/root/repo/target/debug/deps/baselines-d5566bd29f117f68.d: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

/root/repo/target/debug/deps/libbaselines-d5566bd29f117f68.rlib: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

/root/repo/target/debug/deps/libbaselines-d5566bd29f117f68.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gtp.rs crates/baselines/src/nav.rs crates/baselines/src/tax.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gtp.rs:
crates/baselines/src/nav.rs:
crates/baselines/src/tax.rs:
