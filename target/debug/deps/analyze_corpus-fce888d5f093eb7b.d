/root/repo/target/debug/deps/analyze_corpus-fce888d5f093eb7b.d: tests/analyze_corpus.rs

/root/repo/target/debug/deps/analyze_corpus-fce888d5f093eb7b: tests/analyze_corpus.rs

tests/analyze_corpus.rs:
