/root/repo/target/debug/examples/heterogeneous_match-93c7040752ca7e0f.d: examples/heterogeneous_match.rs

/root/repo/target/debug/examples/heterogeneous_match-93c7040752ca7e0f: examples/heterogeneous_match.rs

examples/heterogeneous_match.rs:
