/root/repo/target/debug/examples/auction_analytics-0f268fa27f3d6ca2.d: examples/auction_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libauction_analytics-0f268fa27f3d6ca2.rmeta: examples/auction_analytics.rs Cargo.toml

examples/auction_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
