/root/repo/target/debug/examples/quickstart-cf2f1d22cddcecff.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cf2f1d22cddcecff: examples/quickstart.rs

examples/quickstart.rs:
