/root/repo/target/debug/examples/auction_analytics-9f93b5ddf691b6aa.d: examples/auction_analytics.rs

/root/repo/target/debug/examples/auction_analytics-9f93b5ddf691b6aa: examples/auction_analytics.rs

examples/auction_analytics.rs:
