/root/repo/target/debug/examples/rewrite_optimizer-fc4901bad5a41fc1.d: examples/rewrite_optimizer.rs

/root/repo/target/debug/examples/rewrite_optimizer-fc4901bad5a41fc1: examples/rewrite_optimizer.rs

examples/rewrite_optimizer.rs:
