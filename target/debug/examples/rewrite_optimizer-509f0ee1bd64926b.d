/root/repo/target/debug/examples/rewrite_optimizer-509f0ee1bd64926b.d: examples/rewrite_optimizer.rs Cargo.toml

/root/repo/target/debug/examples/librewrite_optimizer-509f0ee1bd64926b.rmeta: examples/rewrite_optimizer.rs Cargo.toml

examples/rewrite_optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
