/root/repo/target/debug/examples/heterogeneous_match-21c6287d68c96553.d: examples/heterogeneous_match.rs Cargo.toml

/root/repo/target/debug/examples/libheterogeneous_match-21c6287d68c96553.rmeta: examples/heterogeneous_match.rs Cargo.toml

examples/heterogeneous_match.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
