//! Auction analytics over a generated XMark document — the workload the
//! paper's introduction motivates: find active bidders, busy auctions, and
//! per-person activity summaries.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use tlc_xml::{baselines, tlc, xmark};

fn main() {
    let factor = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.01);
    println!("generating XMark data at factor {factor} ...");
    let db = xmark::auction_database(factor);
    println!("{} nodes loaded\n", db.node_count());

    // The paper's Q1: bidders older than 25 on auctions with more than five
    // bidders, with the full bidder subtrees clustered per result.
    let hot_auctions = r#"
        FOR $p IN document("auction.xml")//person
        FOR $o IN document("auction.xml")//open_auction
        WHERE count($o/bidder) > 5 AND $p/age > 25
          AND $p/@id = $o/bidder//@person
        RETURN <person name={$p/name/text()}> $o/bidder </person>"#;

    // Per-person purchase summary (a LET-nested query, like x8).
    let purchases = r#"
        FOR $p IN document("auction.xml")//person
        LET $a := FOR $t IN document("auction.xml")//closed_auction
                  WHERE $t/buyer/@person = $p/@id
                  RETURN <tx>{$t/price/text()}</tx>
        RETURN <buyer name={$p/name/text()}>{count($a/tx)}</buyer>"#;

    // Corpus statistics in one constructed element (like x20).
    let site_stats = r#"
        FOR $s IN document("auction.xml")/site
        RETURN <stats>
          <people>{count($s//person)}</people>
          <auctions>{count($s//open_auction)}</auctions>
          <bids>{count($s//bidder)}</bids>
        </stats>"#;

    for (name, query) in [
        ("hot auctions (Q1)", hot_auctions),
        ("purchases per person", purchases),
        ("site stats", site_stats),
    ] {
        let plan = tlc::compile(query, &db).expect("supported fragment");
        let (trees, stats) = tlc::execute(&db, &plan).expect("plan executes");
        println!("== {name}: {} result tree(s), {} index probes", trees.len(), stats.probes);
        let rendered = tlc::serialize_results(&db, &trees);
        for line in rendered.lines().take(3) {
            let mut shown = line.to_string();
            if shown.len() > 100 {
                shown.truncate(100);
                shown.push('…');
            }
            println!("   {shown}");
        }
        if trees.len() > 3 {
            println!("   … {} more", trees.len() - 3);
        }
        println!();
    }

    // The same Q1 on every engine of the paper's evaluation — all answers
    // are identical, the work done is not.
    println!("engine comparison on Q1 (identical answers, different plans):");
    for engine in baselines::Engine::figure15() {
        let t = std::time::Instant::now();
        let out = baselines::run(engine, hot_auctions, &db).expect("engine runs");
        println!(
            "   {:<4} {:>9.4}s  ({} bytes of output)",
            engine.name(),
            t.elapsed().as_secs_f64(),
            out.len()
        );
    }
}
