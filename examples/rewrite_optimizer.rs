//! The §4 rewrites in action: compile the paper's Q1, apply the Flatten and
//! Shadow/Illuminate rewrite rules, and compare the plans and their work.
//!
//! ```sh
//! cargo run --release --example rewrite_optimizer
//! ```

use tlc_xml::{tlc, xmark};

fn main() {
    let db = xmark::auction_database(0.01);

    let q1 = r#"
        FOR $p IN document("auction.xml")//person
        FOR $o IN document("auction.xml")//open_auction
        WHERE count($o/bidder) > 5 AND $p/age > 25
          AND $p/@id = $o/bidder//@person
        RETURN <person name={$p/name/text()}> $o/bidder </person>"#;

    let plain = tlc::compile(q1, &db).expect("Q1 compiles");
    println!("--- plain TLC plan (cf. Figure 7) ---\n{}", plain.display(Some(&db)));

    // One Flatten rewrite pass (Figure 10).
    let (flattened, changed) = tlc::rewrite::flatten_rewrite(&plain);
    println!("Flatten rewrite fired: {changed}");

    // Then the Shadow/Illuminate rewrite (Figure 12 / §4.3): "using Shadow
    // in place of Flatten".
    let (optimized, changed) = tlc::rewrite::shadow_rewrite(&flattened);
    println!("Shadow/Illuminate rewrite fired: {changed}\n");
    println!("--- OPT plan (cf. Figure 10 right + Shadow) ---\n{}", optimized.display(Some(&db)));

    // Same answers…
    let (plain_trees, plain_stats) = tlc::execute(&db, &plain).expect("plain runs");
    let (opt_trees, opt_stats) = tlc::execute(&db, &optimized).expect("OPT runs");
    assert_eq!(
        tlc::serialize_results(&db, &plain_trees),
        tlc::serialize_results(&db, &opt_trees),
        "rewrites are semantics-preserving"
    );

    // …less work (the redundant bidder accesses are gone).
    println!(
        "plain: {} index probes, {} nodes inspected",
        plain_stats.probes, plain_stats.nodes_inspected
    );
    println!(
        "OPT:   {} index probes, {} nodes inspected",
        opt_stats.probes, opt_stats.nodes_inspected
    );
    let t = std::time::Instant::now();
    for _ in 0..20 {
        tlc::execute(&db, &plain).unwrap();
    }
    let plain_time = t.elapsed();
    let t = std::time::Instant::now();
    for _ in 0..20 {
        tlc::execute(&db, &optimized).unwrap();
    }
    let opt_time = t.elapsed();
    println!(
        "20 runs: plain {:.3}s, OPT {:.3}s ({:.2}x)",
        plain_time.as_secs_f64(),
        opt_time.as_secs_f64(),
        plain_time.as_secs_f64() / opt_time.as_secs_f64()
    );
}
