//! Annotated pattern trees on heterogeneous data — the paper's Figure 4
//! example, built by hand against the low-level pattern API.
//!
//! Shows how one APT with `-`, `?` and `+` edges produces heterogeneous
//! witness trees (clustered siblings, optional branches) whose logical
//! class reduction is nevertheless homogeneous.
//!
//! ```sh
//! cargo run --example heterogeneous_match
//! ```

use tlc::{Apt, LclId, MSpec};
use tlc_xml::{tlc, xmldb};
use xmldb::AxisRel;

fn main() {
    let mut db = xmldb::Database::new();
    // The Figure 4 input forest: two B-rooted trees with varying numbers of
    // A, C, D children and E descendants.
    db.load_xml(
        "fig4.xml",
        "<root>\
           <B><A><E/><E/></A><A/><C/><D/><D/></B>\
           <B><A><E/></A><C/></B>\
         </root>",
    )
    .unwrap();

    let tag = |n: &str| db.interner().lookup(n).unwrap();

    // The Figure 4 APT: B[-] with A[+] (E[+] below), C[-], D[?].
    let mut apt = Apt::for_document("fig4.xml", LclId(1));
    let b = apt.add(None, AxisRel::Descendant, MSpec::One, tag("B"), None, LclId(2));
    let a = apt.add(Some(b), AxisRel::Child, MSpec::Plus, tag("A"), None, LclId(3));
    apt.add(Some(a), AxisRel::Descendant, MSpec::Plus, tag("E"), None, LclId(4));
    apt.add(Some(b), AxisRel::Child, MSpec::One, tag("C"), None, LclId(5));
    apt.add(Some(b), AxisRel::Child, MSpec::Opt, tag("D"), None, LclId(6));
    println!("APT: {}\n", apt.display(Some(&db)));

    let plan = tlc::Plan::Select { input: None, apt };
    let (trees, _) = tlc::execute(&db, &plan).expect("pattern matches");
    println!("{} witness trees (the paper's Figure 4c shows 3):\n", trees.len());
    for (i, t) in trees.iter().enumerate() {
        println!("witness tree {}:", i + 1);
        for (lcl, label) in [(2, "B"), (3, "A"), (4, "E"), (5, "C"), (6, "D")] {
            let members = t.members(LclId(lcl));
            println!(
                "  class ({lcl}) {label}: {} member(s) — heterogeneous counts, homogeneous classes",
                members.len()
            );
        }
        println!();
    }
}
