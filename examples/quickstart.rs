//! Quickstart: load an XML document, compile an XQuery, look at the TLC
//! plan, and run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tlc_xml::{tlc, xmldb};

fn main() {
    // 1. A native XML database with one document.
    let mut db = xmldb::Database::new();
    db.load_xml(
        "library.xml",
        r#"<library>
             <book year="2004"><title>Tree Logical Classes</title>
               <author>Paparizos</author><author>Wu</author>
               <author>Lakshmanan</author><author>Jagadish</author></book>
             <book year="2002"><title>Structural Joins</title>
               <author>Al-Khalifa</author></book>
             <book year="2003"><title>Holistic Twig Joins</title>
               <author>Bruno</author><author>Koudas</author><author>Srivastava</author></book>
           </library>"#,
    )
    .expect("well-formed XML");

    // 2. An XQuery in the paper's FLWOR fragment: books with more than one
    //    author, returning the title and the clustered author set.
    let query = r#"
        FOR $b IN document("library.xml")//book
        WHERE count($b/author) > 1 AND $b/@year > 2002
        RETURN <hit title={$b/title/text()}>{$b/author}</hit>"#;

    // 3. Compile to a TLC algebra plan (Figure 6 of the paper) and show it.
    let plan = tlc::compile(query, &db).expect("query is in the supported fragment");
    println!("TLC plan:\n{}", plan.display(Some(&db)));

    // 4. Execute: heterogeneous witness trees, logical-class bookkeeping and
    //    nest-joins all happen behind this one call.
    let result = tlc::execute_to_string(&db, &plan).expect("plan executes");
    println!("result:\n{result}");

    // 5. Execution counters: how much pattern-matching work the plan did.
    let (_, stats) = tlc::execute(&db, &plan).expect("plan executes");
    println!("\npattern matches: {}, index probes: {}", stats.pattern_matches, stats.probes);
}
