#![warn(missing_docs)]

//! # tlc-xml — facade crate
//!
//! Re-exports every component of the TLC reproduction so examples and
//! integration tests can use a single dependency:
//!
//! * [`xmldb`] — the TIMBER-like native XML store.
//! * [`xmark`] — the synthetic XMark data generator.
//! * [`xquery`] — the Figure 5 FLWOR parser.
//! * [`tlc`] — the TLC algebra (the paper's contribution).
//! * [`baselines`] — the TAX, GTP and navigational competitors.
//! * [`queries`] — the evaluation query suite and run harness.
//! * [`service`] — the concurrent query service (plan cache, worker pool,
//!   deadlines, metrics).

pub use baselines;
pub use queries;
pub use service;
pub use tlc;
pub use xmark;
pub use xmldb;
pub use xquery;
