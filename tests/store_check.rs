//! The store invariant checker over generated XMark databases.
//!
//! Every scale factor exercised by the benchmark harness must produce a
//! database whose interval encoding, arena layout and derived indexes pass
//! `xmldb::check` — and the persistence round trip must preserve that.

#[test]
fn xmark_databases_pass_the_store_check() {
    for factor in [0.0002, 0.001, 0.005] {
        let db = xmark::auction_database(factor);
        let report = xmldb::check_database(&db)
            .unwrap_or_else(|e| panic!("xmark factor {factor} fails the store check: {e}"));
        assert_eq!(report.documents, db.document_count());
        assert_eq!(report.nodes, db.node_count());
        assert_eq!(report.tag_postings, db.tag_index().posting_count());
    }
}

#[test]
fn xmark_snapshot_round_trip_passes_the_store_check() {
    let db = xmark::auction_database(0.001);
    let mut buf = Vec::new();
    xmldb::persist::save(&db, &mut buf).unwrap();
    let loaded = xmldb::persist::load(&mut buf.as_slice()).unwrap();
    let a = xmldb::check_database(&db).unwrap();
    let b = xmldb::check_database(&loaded).unwrap();
    assert_eq!(a, b, "round trip must preserve node and posting counts");
}
