//! Seeded mutation testing of the LC dataflow analyzer.
//!
//! Takes real compiled corpus plans, applies a seeded structural mutation —
//! drop a downstream-needed class from a Project, point a Join predicate at
//! a class the right side does not produce, corrupt or empty a Union branch,
//! duplicate a pattern label — and asserts the analyzer rejects each with
//! the matching typed `AnalyzeError` variant. This is the negative face of
//! the corpus test: the analyzer must accept every valid plan *and* refuse
//! every one of these invalid ones.

use tlc::analyze::{self, AnalyzeError};
use tlc::{LclId, Plan};
use xmark::rng::{SeedableRng, StdRng};

fn xmark_db() -> xmldb::Database {
    xmark::auction_database(0.0005)
}

/// A class id no translator-produced plan ever issues.
const BOGUS: LclId = LclId(999_999);

/// Walks the plan pre-order, offering each operator to `f` mutably; stops
/// after the first mutation `f` reports.
fn mutate_first(plan: &mut Plan, f: &mut impl FnMut(&mut Plan) -> bool) -> bool {
    if f(plan) {
        return true;
    }
    match plan {
        Plan::Select { input, .. } => input.as_deref_mut().is_some_and(|i| mutate_first(i, f)),
        Plan::Join { left, right, .. } => mutate_first(left, f) || mutate_first(right, f),
        Plan::Union { inputs, .. } => inputs.iter_mut().any(|i| mutate_first(i, f)),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::DupElim { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Construct { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Flatten { input, .. }
        | Plan::Shadow { input, .. }
        | Plan::Illuminate { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::Materialize { input, .. } => mutate_first(input, f),
    }
}

/// Compiled plans for the whole corpus (TLC style).
fn corpus_plans(db: &xmldb::Database) -> Vec<(&'static str, Plan)> {
    queries::all_queries()
        .iter()
        .chain(queries::extended_queries())
        .filter_map(|q| tlc::compile(q.text, db).ok().map(|p| (q.name, p)))
        .collect()
}

#[test]
fn dropping_a_needed_project_class_is_rejected() {
    let db = xmark_db();
    let mut rejected = 0;
    for (name, plan) in corpus_plans(&db) {
        // Drop, from some Project, a kept class that is *not* the subtree's
        // root class (the root always survives, so dropping it is not a
        // violation) and that a downstream operator still references.
        let mut mutant = plan.clone();
        let mutated = mutate_first(&mut mutant, &mut |p| {
            if let Plan::Project { input, keep } = p {
                let Ok(t) = analyze::analyze(input) else { return false };
                if let Some(pos) =
                    keep.iter().position(|k| t.root != Some(*k) && t.classes.contains_key(k))
                {
                    keep.remove(pos);
                    return true;
                }
            }
            false
        });
        if !mutated {
            continue;
        }
        match analyze::verify(&mutant) {
            // Most drops orphan a later reference; all must be typed.
            Err(AnalyzeError::MissingClass { .. })
            | Err(AnalyzeError::MissingAnchor { .. })
            | Err(AnalyzeError::UnionBranchMissing { .. })
            | Err(AnalyzeError::JoinSideMissing { .. }) => rejected += 1,
            Err(other) => panic!("{name}: unexpected error class {other}"),
            // A keep entry nothing downstream reads is legal to drop.
            Ok(_) => {}
        }
    }
    assert!(rejected >= 5, "only {rejected} plans rejected the Project mutation");
}

#[test]
fn renaming_a_join_reference_is_rejected() {
    let db = xmark_db();
    let mut seen = 0;
    let mut rng = StdRng::seed_from_u64(0x071c_2004);
    for (name, plan) in corpus_plans(&db) {
        let pick_left = rng.next_u64() % 2 == 0;
        let mut mutant = plan.clone();
        let mutated = mutate_first(&mut mutant, &mut |p| {
            if let Plan::Join { spec, .. } = p {
                if let Some(pred) = &mut spec.pred {
                    if pick_left {
                        pred.left = BOGUS;
                    } else {
                        pred.right = BOGUS;
                    }
                    return true;
                }
            }
            false
        });
        if !mutated {
            continue;
        }
        seen += 1;
        let expect = if pick_left { "left" } else { "right" };
        match analyze::verify(&mutant) {
            Err(AnalyzeError::JoinSideMissing { side, lcl }) => {
                assert_eq!(side, expect, "{name}");
                assert_eq!(lcl, BOGUS, "{name}");
            }
            other => panic!("{name}: expected JoinSideMissing({expect}), got {other:?}"),
        }
    }
    assert!(seen >= 5, "only {seen} plans had a join predicate to corrupt");
}

#[test]
fn corrupting_a_union_branch_is_rejected() {
    let db = xmark_db();
    let mut seen = 0;
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for (name, plan) in corpus_plans(&db) {
        let mut branch_count = 0usize;
        let mut probe = plan.clone();
        mutate_first(&mut probe, &mut |p| {
            if let Plan::Union { inputs, dedup_on } = p {
                if !dedup_on.is_empty() {
                    branch_count = inputs.len();
                }
            }
            false
        });
        if branch_count == 0 {
            continue;
        }
        // Project a seeded branch down to nothing: the branch no longer
        // produces the union's dedup classes.
        let victim = (rng.next_u64() % branch_count as u64) as usize;
        let mut mutant = plan.clone();
        mutate_first(&mut mutant, &mut |p| {
            if let Plan::Union { inputs, dedup_on } = p {
                if !dedup_on.is_empty() {
                    let old = std::mem::replace(
                        &mut inputs[victim],
                        Plan::Union { inputs: vec![], dedup_on: vec![] },
                    );
                    inputs[victim] = Plan::Project { input: Box::new(old), keep: vec![] };
                    return true;
                }
            }
            false
        });
        seen += 1;
        match analyze::verify(&mutant) {
            Err(AnalyzeError::UnionBranchMissing { branch, .. }) => {
                assert_eq!(branch, victim, "{name}")
            }
            other => panic!("{name}: expected UnionBranchMissing, got {other:?}"),
        }
    }
    assert!(seen >= 1, "no corpus query produced a Union plan");
}

#[test]
fn emptying_a_union_is_rejected() {
    let db = xmark_db();
    let mut seen = 0;
    for (name, plan) in corpus_plans(&db) {
        let mut mutant = plan.clone();
        let mutated = mutate_first(&mut mutant, &mut |p| {
            if let Plan::Union { inputs, .. } = p {
                inputs.clear();
                return true;
            }
            false
        });
        if !mutated {
            continue;
        }
        seen += 1;
        match analyze::verify(&mutant) {
            Err(AnalyzeError::EmptyUnion) => {}
            other => panic!("{name}: expected EmptyUnion, got {other:?}"),
        }
    }
    assert!(seen >= 1, "no corpus query produced a Union plan");
}

#[test]
fn generated_plans_reject_the_same_mutations() {
    // The `experiments lintcheck` oracle's seeded generator supplies plan
    // shapes the compiled corpus never reaches (deep wrapper stacks,
    // unions over clones, aggregates over joins); the same structural
    // mutations must be rejected on those too, so the negative surface is
    // shared between hand-compiled and machine-generated plans.
    let db = xmark_db();
    let mut relabeled = 0;
    let mut joins = 0;
    for seed in 0..150u64 {
        let plan = tlc::random_plan(&db, "auction.xml", seed).plan;
        let mut mutant = plan.clone();
        if mutate_first(&mut mutant, &mut |p| {
            if let Plan::Select { apt, .. } = p {
                if !apt.nodes.is_empty() {
                    // Relabel the first pattern node with its own anchor.
                    apt.nodes[0].lcl = apt.root_lcl();
                    return true;
                }
            }
            false
        }) {
            relabeled += 1;
            assert!(
                matches!(analyze::verify(&mutant), Err(AnalyzeError::DuplicateClass { .. })),
                "seed {seed}: duplicate pattern label accepted"
            );
        }
        let mut mutant = plan;
        if mutate_first(&mut mutant, &mut |p| {
            if let Plan::Join { spec, .. } = p {
                if let Some(pred) = &mut spec.pred {
                    pred.right = BOGUS;
                    return true;
                }
            }
            false
        }) {
            joins += 1;
            match analyze::verify(&mutant) {
                Err(AnalyzeError::JoinSideMissing { side, lcl }) => {
                    assert_eq!(side, "right", "seed {seed}");
                    assert_eq!(lcl, BOGUS, "seed {seed}");
                }
                other => panic!("seed {seed}: expected JoinSideMissing, got {other:?}"),
            }
        }
    }
    assert!(relabeled >= 100, "generator produced too few selects: {relabeled}");
    assert!(joins >= 10, "generator produced too few join predicates: {joins}");
}

#[test]
fn duplicating_a_pattern_label_is_rejected() {
    let db = xmark_db();
    let mut seen = 0;
    let mut rng = StdRng::seed_from_u64(42);
    for (name, plan) in corpus_plans(&db) {
        let reuse = rng.next_u64();
        let mut mutant = plan.clone();
        let mutated = mutate_first(&mut mutant, &mut |p| {
            if let Plan::Select { apt, .. } = p {
                if !apt.nodes.is_empty() {
                    // Relabel a seeded pattern node with the anchor's label.
                    let i = (reuse % apt.nodes.len() as u64) as usize;
                    apt.nodes[i].lcl = apt.root_lcl();
                    return true;
                }
            }
            false
        });
        if !mutated {
            continue;
        }
        seen += 1;
        match analyze::verify(&mutant) {
            Err(AnalyzeError::DuplicateClass { .. }) => {}
            // Relabeling can also orphan the old label's downstream users —
            // the duplicate check fires first on the APT itself though.
            other => panic!("{name}: expected DuplicateClass, got {other:?}"),
        }
    }
    assert!(seen >= 10, "only {seen} plans had a pattern node to relabel");
}
