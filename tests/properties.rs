//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use tlc_xml::{tlc, xmldb};
use xmldb::{Database, DocumentBuilder, TagInterner};

// ---------------------------------------------------------------------
// Random document generation
// ---------------------------------------------------------------------

/// A recipe for a small random XML tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf(u8, String),
    Inner(u8, Vec<Node>),
}

fn arb_node(depth: u32) -> impl Strategy<Value = Node> {
    let leaf = (0u8..6, "[a-z0-9]{0,6}").prop_map(|(t, s)| Node::Leaf(t, s));
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (0u8..6, prop::collection::vec(inner, 0..4)).prop_map(|(t, c)| Node::Inner(t, c))
    })
}

fn tags() -> [&'static str; 6] {
    ["a", "b", "c", "d", "e", "f"]
}

fn build(node: &Node, b: &mut DocumentBuilder, i: &TagInterner) {
    match node {
        Node::Leaf(t, s) => {
            b.leaf(i.intern(tags()[*t as usize]), s, i);
        }
        Node::Inner(t, children) => {
            b.start_element(i.intern(tags()[*t as usize]));
            for c in children {
                build(c, b, i);
            }
            b.end_element().unwrap();
        }
    }
}

fn db_from(node: &Node) -> Database {
    let mut db = Database::new();
    let mut b = db.builder("t.xml");
    b.start_element(db.interner().intern("root"));
    build(node, &mut b, db.interner());
    b.end_element().unwrap();
    let doc = b.finish().unwrap();
    db.insert(doc).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pre-order arena invariants hold for arbitrary trees.
    #[test]
    fn document_invariants(node in arb_node(4)) {
        let db = db_from(&node);
        db.document(xmldb::DocId(0)).check_invariants().unwrap();
    }

    /// Serialize → parse → serialize is a fixpoint.
    #[test]
    fn serialization_round_trip(node in arb_node(4)) {
        let db = db_from(&node);
        let first = xmldb::serialize::serialize_subtree(&db, db.root(xmldb::DocId(0)));
        let mut db2 = Database::new();
        let d2 = db2.load_xml("t.xml", &first).unwrap();
        let second = xmldb::serialize::serialize_subtree(&db2, db2.root(d2));
        prop_assert_eq!(first, second);
    }

    /// The interval ancestor test agrees with parent-link navigation for
    /// every node pair.
    #[test]
    fn interval_encoding_matches_navigation(node in arb_node(3)) {
        let db = db_from(&node);
        let doc = db.document(xmldb::DocId(0));
        let n = doc.len() as u32;
        for a in 0..n {
            for d in 0..n {
                let nav = {
                    let mut cur = doc.parent(d);
                    let mut found = false;
                    while let Some(p) = cur {
                        if p == a { found = true; break; }
                        cur = doc.parent(p);
                    }
                    found
                };
                prop_assert_eq!(doc.is_ancestor(a, d), nav);
            }
        }
    }

    /// The tag index lists exactly the nodes a full scan finds, in order.
    #[test]
    fn tag_index_is_complete_and_ordered(node in arb_node(4)) {
        let db = db_from(&node);
        let doc = db.document(xmldb::DocId(0));
        for t in tags() {
            let indexed = db.nodes_with_tag(t);
            prop_assert!(indexed.windows(2).all(|w| w[0] < w[1]));
            let Some(tag) = db.interner().lookup(t) else { continue };
            let scanned: Vec<u32> = (0..doc.len() as u32)
                .filter(|&p| doc.record(p).tag == tag)
                .collect();
            let indexed_pres: Vec<u32> = indexed.iter().map(|n| n.pre).collect();
            prop_assert_eq!(indexed_pres, scanned);
        }
    }

    /// Structural join output equals the naive nested-loop result.
    #[test]
    fn structural_join_matches_nested_loop(node in arb_node(4)) {
        use tlc::physical::structural::{inodes, structural_join};
        let db = db_from(&node);
        let a = inodes(&db, db.nodes_with_tag("a"));
        let b = inodes(&db, db.nodes_with_tag("b"));
        for axis in [xmldb::AxisRel::Child, xmldb::AxisRel::Descendant] {
            let fast = structural_join(&a, &b, axis);
            let mut naive = Vec::new();
            for (ai, an) in a.iter().enumerate() {
                for (bi, bn) in b.iter().enumerate() {
                    if an.relates(bn, axis) {
                        naive.push((ai, bi));
                    }
                }
            }
            let mut fast_sorted = fast.clone();
            fast_sorted.sort_unstable();
            prop_assert_eq!(fast_sorted, naive);
        }
    }

    /// A descendant-axis pattern match finds exactly the nodes the tag
    /// index holds (the `//tag` ≡ index-scan equivalence).
    #[test]
    fn descendant_match_equals_index(node in arb_node(4)) {
        let db = db_from(&node);
        let Some(tag) = db.interner().lookup("c") else { return Ok(()) };
        let mut apt = tlc::Apt::for_document("t.xml", tlc::LclId(1));
        apt.add(None, xmldb::AxisRel::Descendant, tlc::MSpec::One, tag, None, tlc::LclId(2));
        let (trees, _) = tlc::execute(&db, &tlc::Plan::Select { input: None, apt }).unwrap();
        prop_assert_eq!(trees.len(), db.nodes_with_tag("c").len());
    }

    /// Flatten then count: the fanned-out trees partition the cluster.
    #[test]
    fn flatten_partitions_clusters(node in arb_node(4)) {
        let db = db_from(&node);
        let a_tag = db.interner().lookup("a");
        let b_tag = db.interner().lookup("b");
        let (Some(a_tag), Some(b_tag)) = (a_tag, b_tag) else { return Ok(()) };
        let mut apt = tlc::Apt::for_document("t.xml", tlc::LclId(1));
        let a = apt.add(None, xmldb::AxisRel::Descendant, tlc::MSpec::One, a_tag, None, tlc::LclId(2));
        apt.add(Some(a), xmldb::AxisRel::Child, tlc::MSpec::Star, b_tag, None, tlc::LclId(3));
        let select = tlc::Plan::Select { input: None, apt };
        let (clustered, _) = tlc::execute(&db, &select).unwrap();
        let total: usize = clustered.iter().map(|t| t.members(tlc::LclId(3)).len()).sum();
        let flat_plan = tlc::Plan::Flatten {
            input: Box::new(select),
            parent: tlc::LclId(2),
            child: tlc::LclId(3),
        };
        let (flat, _) = tlc::execute(&db, &flat_plan).unwrap();
        prop_assert_eq!(flat.len(), total, "one flattened tree per cluster member");
        prop_assert!(flat.iter().all(|t| t.members(tlc::LclId(3)).len() == 1));
    }

    /// Shadow ∘ Illuminate is the identity on class membership.
    #[test]
    fn shadow_illuminate_identity(node in arb_node(4)) {
        let db = db_from(&node);
        let (Some(a_tag), Some(b_tag)) =
            (db.interner().lookup("a"), db.interner().lookup("b")) else { return Ok(()) };
        let mut apt = tlc::Apt::for_document("t.xml", tlc::LclId(1));
        let a = apt.add(None, xmldb::AxisRel::Descendant, tlc::MSpec::One, a_tag, None, tlc::LclId(2));
        apt.add(Some(a), xmldb::AxisRel::Child, tlc::MSpec::Star, b_tag, None, tlc::LclId(3));
        let select = tlc::Plan::Select { input: None, apt };
        let (before, _) = tlc::execute(&db, &select).unwrap();
        let member_counts: Vec<usize> = before.iter().map(|t| t.members(tlc::LclId(3)).len()).collect();
        let plan = tlc::Plan::Illuminate {
            input: Box::new(tlc::Plan::Shadow {
                input: Box::new(select),
                parent: tlc::LclId(2),
                child: tlc::LclId(3),
            }),
            lcl: tlc::LclId(3),
        };
        let (after, _) = tlc::execute(&db, &plan).unwrap();
        // Shadow fans out per member; after Illuminate every fanned tree has
        // the full membership back.
        let expected: usize = member_counts.iter().sum();
        prop_assert_eq!(after.len(), expected);
        let all_full = after
            .iter()
            .all(|t| member_counts.contains(&t.members(tlc::LclId(3)).len()));
        prop_assert!(all_full);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// TwigStack agrees with naive twig evaluation on random documents and
    /// random twig shapes.
    #[test]
    fn twigstack_matches_naive(node in arb_node(4), shape in 0usize..6) {
        use tlc::physical::twigstack::{twig_join, twig_join_naive, Twig};
        use xmldb::AxisRel::{Child, Descendant};
        let db = db_from(&node);
        let t = |n: &str| db.interner().intern(n);
        // A few representative twig shapes over the random tag alphabet.
        let twig = match shape {
            0 => {
                // a//b
                let mut w = Twig::new(t("a"));
                w.add(0, Descendant, t("b"));
                w
            }
            1 => {
                // a/b
                let mut w = Twig::new(t("a"));
                w.add(0, Child, t("b"));
                w
            }
            2 => {
                // a[//b][//c]
                let mut w = Twig::new(t("a"));
                w.add(0, Descendant, t("b"));
                w.add(0, Descendant, t("c"));
                w
            }
            3 => {
                // a//b//c
                let mut w = Twig::new(t("a"));
                let b = w.add(0, Descendant, t("b"));
                w.add(b, Descendant, t("c"));
                w
            }
            4 => {
                // b[//a/c][//d] — branch with a mixed-axis path
                let mut w = Twig::new(t("b"));
                let a = w.add(0, Descendant, t("a"));
                w.add(a, Child, t("c"));
                w.add(0, Descendant, t("d"));
                w
            }
            _ => {
                // a[//a] — recursive same-tag twig
                let mut w = Twig::new(t("a"));
                w.add(0, Descendant, t("a"));
                w
            }
        };
        prop_assert_eq!(twig_join(&db, &twig), twig_join_naive(&db, &twig));
    }
}

// ---------------------------------------------------------------------
// Random query generation over the XMark schema
// ---------------------------------------------------------------------

/// A tiny random query family: pick a path, an optional predicate, and a
/// return shape; every engine must agree on the result.
fn arb_query() -> impl Strategy<Value = String> {
    let paths = prop::sample::select(vec![
        ("person", "name"),
        ("person", "emailaddress"),
        ("open_auction", "initial"),
        ("open_auction", "quantity"),
        ("closed_auction", "price"),
        ("item", "location"),
    ]);
    let pred = prop::option::of((prop::sample::select(vec![">", "<", "="]), 0u32..300));
    (paths, pred, prop::bool::ANY).prop_map(|((elem, field), pred, use_count)| {
        let where_clause = match pred {
            Some((op, v)) => format!("WHERE $x/{field} {op} {v}"),
            None => String::new(),
        };
        let ret = if use_count {
            format!("RETURN <n>{{count($x/{field})}}</n>")
        } else {
            format!("RETURN $x/{field}")
        };
        format!("FOR $x IN document(\"auction.xml\")//{elem} {where_clause} {ret}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine agreement on random queries over XMark data.
    #[test]
    fn engines_agree_on_random_queries(q in arb_query()) {
        use baselines::Engine;
        // A small shared database (rebuilt per case keeps cases independent;
        // the factor keeps it fast).
        let db = xmark::auction_database(0.001);
        let reference = baselines::run(Engine::Tlc, &q, &db).unwrap();
        for engine in [Engine::TlcOpt, Engine::Gtp, Engine::Tax, Engine::Nav] {
            let out = baselines::run(engine, &q, &db).unwrap();
            prop_assert_eq!(&out, &reference, "{} disagrees on {}", engine.name(), q);
        }
    }
}

use tlc_xml::xmark;
