//! Property-style tests on the core data structures and invariants.
//!
//! Each test runs a fixed number of cases over pseudo-random inputs drawn
//! from a seeded in-tree generator, so the suite is fully deterministic and
//! needs no external property-testing crate.

use tlc_xml::{tlc, xmark, xmldb};
use xmldb::{Database, DocumentBuilder, TagInterner};

// ---------------------------------------------------------------------
// Deterministic random generation
// ---------------------------------------------------------------------

/// Splitmix64; one instance per test, seeded per test, so cases are stable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A recipe for a small random XML tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf(u8, String),
    Inner(u8, Vec<Node>),
}

fn tags() -> [&'static str; 6] {
    ["a", "b", "c", "d", "e", "f"]
}

/// Random tree of depth ≤ `depth`: biased toward inner nodes near the root
/// so trees have structure, leaves carry short alphanumeric text.
fn arb_node(rng: &mut Rng, depth: u32) -> Node {
    let tag = rng.below(6) as u8;
    if depth == 0 || rng.below(3) == 0 {
        let len = rng.below(7);
        let text: String = (0..len)
            .map(|_| {
                let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
                alphabet[rng.below(alphabet.len())] as char
            })
            .collect();
        Node::Leaf(tag, text)
    } else {
        let children = (0..rng.below(4)).map(|_| arb_node(rng, depth - 1)).collect();
        Node::Inner(tag, children)
    }
}

fn build(node: &Node, b: &mut DocumentBuilder, i: &TagInterner) {
    match node {
        Node::Leaf(t, s) => {
            b.leaf(i.intern(tags()[*t as usize]), s, i);
        }
        Node::Inner(t, children) => {
            b.start_element(i.intern(tags()[*t as usize]));
            for c in children {
                build(c, b, i);
            }
            b.end_element().unwrap();
        }
    }
}

fn db_from(node: &Node) -> Database {
    let mut db = Database::new();
    let mut b = db.builder("t.xml");
    b.start_element(db.interner().intern("root"));
    build(node, &mut b, db.interner());
    b.end_element().unwrap();
    let doc = b.finish().unwrap();
    db.insert(doc).unwrap();
    db
}

/// Runs `check` on `cases` random documents generated from `seed`.
fn for_random_docs(seed: u64, cases: usize, depth: u32, check: impl Fn(&Database)) {
    let mut rng = Rng(seed);
    for case in 0..cases {
        let node = arb_node(&mut rng, depth);
        let db = db_from(&node);
        // The case index in the message makes failures reproducible.
        let _ = case;
        check(&db);
    }
}

// ---------------------------------------------------------------------
// Store invariants
// ---------------------------------------------------------------------

/// The pre-order arena invariants hold for arbitrary trees.
#[test]
fn document_invariants() {
    for_random_docs(0xD0C_0001, 64, 4, |db| {
        db.document(xmldb::DocId(0)).check_invariants().unwrap();
    });
}

/// Serialize → parse → serialize is a fixpoint.
#[test]
fn serialization_round_trip() {
    for_random_docs(0xD0C_0002, 64, 4, |db| {
        let first = xmldb::serialize::serialize_subtree(db, db.root(xmldb::DocId(0)));
        let mut db2 = Database::new();
        let d2 = db2.load_xml("t.xml", &first).unwrap();
        let second = xmldb::serialize::serialize_subtree(&db2, db2.root(d2));
        assert_eq!(first, second);
    });
}

/// The interval ancestor test agrees with parent-link navigation for every
/// node pair.
#[test]
fn interval_encoding_matches_navigation() {
    for_random_docs(0xD0C_0003, 48, 3, |db| {
        let doc = db.document(xmldb::DocId(0));
        for a in doc.pres() {
            for d in doc.pres() {
                let nav = {
                    let mut cur = doc.parent(d);
                    let mut found = false;
                    while let Some(p) = cur {
                        if p == a {
                            found = true;
                            break;
                        }
                        cur = doc.parent(p);
                    }
                    found
                };
                assert_eq!(doc.is_ancestor(a, d), nav);
            }
        }
    });
}

/// The tag index lists exactly the nodes a full scan finds, in order.
#[test]
fn tag_index_is_complete_and_ordered() {
    for_random_docs(0xD0C_0004, 64, 4, |db| {
        let doc = db.document(xmldb::DocId(0));
        for t in tags() {
            let indexed = db.nodes_with_tag(t);
            assert!(indexed.windows(2).all(|w| w[0] < w[1]));
            let Some(tag) = db.interner().lookup(t) else { continue };
            let scanned: Vec<u32> = doc.pres().filter(|&p| doc.record(p).tag == tag).collect();
            let indexed_pres: Vec<u32> = indexed.iter().map(|n| n.pre).collect();
            assert_eq!(indexed_pres, scanned);
        }
    });
}

/// Structural join output equals the naive nested-loop result.
#[test]
fn structural_join_matches_nested_loop() {
    use tlc::physical::structural::{inodes, structural_join};
    for_random_docs(0xD0C_0005, 64, 4, |db| {
        let a = inodes(db, db.nodes_with_tag("a"));
        let b = inodes(db, db.nodes_with_tag("b"));
        for axis in [xmldb::AxisRel::Child, xmldb::AxisRel::Descendant] {
            let fast = structural_join(&a, &b, axis);
            let mut naive = Vec::new();
            for (ai, an) in a.iter().enumerate() {
                for (bi, bn) in b.iter().enumerate() {
                    if an.relates(bn, axis) {
                        naive.push((ai, bi));
                    }
                }
            }
            let mut fast_sorted = fast.clone();
            fast_sorted.sort_unstable();
            assert_eq!(fast_sorted, naive);
        }
    });
}

/// A descendant-axis pattern match finds exactly the nodes the tag index
/// holds (the `//tag` ≡ index-scan equivalence).
#[test]
fn descendant_match_equals_index() {
    for_random_docs(0xD0C_0006, 64, 4, |db| {
        let Some(tag) = db.interner().lookup("c") else { return };
        let mut apt = tlc::Apt::for_document("t.xml", tlc::LclId(1));
        apt.add(None, xmldb::AxisRel::Descendant, tlc::MSpec::One, tag, None, tlc::LclId(2));
        let (trees, _) = tlc::execute(db, &tlc::Plan::Select { input: None, apt }).unwrap();
        assert_eq!(trees.len(), db.nodes_with_tag("c").len());
    });
}

/// Flatten then count: the fanned-out trees partition the cluster.
#[test]
fn flatten_partitions_clusters() {
    for_random_docs(0xD0C_0007, 64, 4, |db| {
        let a_tag = db.interner().lookup("a");
        let b_tag = db.interner().lookup("b");
        let (Some(a_tag), Some(b_tag)) = (a_tag, b_tag) else { return };
        let mut apt = tlc::Apt::for_document("t.xml", tlc::LclId(1));
        let a =
            apt.add(None, xmldb::AxisRel::Descendant, tlc::MSpec::One, a_tag, None, tlc::LclId(2));
        apt.add(Some(a), xmldb::AxisRel::Child, tlc::MSpec::Star, b_tag, None, tlc::LclId(3));
        let select = tlc::Plan::Select { input: None, apt };
        let (clustered, _) = tlc::execute(db, &select).unwrap();
        let total: usize = clustered.iter().map(|t| t.members(tlc::LclId(3)).len()).sum();
        let flat_plan = tlc::Plan::Flatten {
            input: Box::new(select),
            parent: tlc::LclId(2),
            child: tlc::LclId(3),
        };
        let (flat, _) = tlc::execute(db, &flat_plan).unwrap();
        assert_eq!(flat.len(), total, "one flattened tree per cluster member");
        assert!(flat.iter().all(|t| t.members(tlc::LclId(3)).len() == 1));
    });
}

/// Shadow ∘ Illuminate is the identity on class membership.
#[test]
fn shadow_illuminate_identity() {
    for_random_docs(0xD0C_0008, 64, 4, |db| {
        let (Some(a_tag), Some(b_tag)) = (db.interner().lookup("a"), db.interner().lookup("b"))
        else {
            return;
        };
        let mut apt = tlc::Apt::for_document("t.xml", tlc::LclId(1));
        let a =
            apt.add(None, xmldb::AxisRel::Descendant, tlc::MSpec::One, a_tag, None, tlc::LclId(2));
        apt.add(Some(a), xmldb::AxisRel::Child, tlc::MSpec::Star, b_tag, None, tlc::LclId(3));
        let select = tlc::Plan::Select { input: None, apt };
        let (before, _) = tlc::execute(db, &select).unwrap();
        let member_counts: Vec<usize> =
            before.iter().map(|t| t.members(tlc::LclId(3)).len()).collect();
        let plan = tlc::Plan::Illuminate {
            input: Box::new(tlc::Plan::Shadow {
                input: Box::new(select),
                parent: tlc::LclId(2),
                child: tlc::LclId(3),
            }),
            lcl: tlc::LclId(3),
        };
        let (after, _) = tlc::execute(db, &plan).unwrap();
        // Shadow fans out per member; after Illuminate every fanned tree has
        // the full membership back.
        let expected: usize = member_counts.iter().sum();
        assert_eq!(after.len(), expected);
        let all_full =
            after.iter().all(|t| member_counts.contains(&t.members(tlc::LclId(3)).len()));
        assert!(all_full);
    });
}

/// TwigStack agrees with naive twig evaluation on random documents and
/// random twig shapes.
#[test]
fn twigstack_matches_naive() {
    use tlc::physical::twigstack::{twig_join, twig_join_naive, Twig};
    use xmldb::AxisRel::{Child, Descendant};
    let mut rng = Rng(0xD0C_0009);
    for case in 0..96 {
        let node = arb_node(&mut rng, 4);
        let db = db_from(&node);
        let t = |n: &str| db.interner().intern(n);
        // A few representative twig shapes over the random tag alphabet.
        let shape = case % 6;
        let twig = match shape {
            0 => {
                // a//b
                let mut w = Twig::new(t("a"));
                w.add(0, Descendant, t("b"));
                w
            }
            1 => {
                // a/b
                let mut w = Twig::new(t("a"));
                w.add(0, Child, t("b"));
                w
            }
            2 => {
                // a[//b][//c]
                let mut w = Twig::new(t("a"));
                w.add(0, Descendant, t("b"));
                w.add(0, Descendant, t("c"));
                w
            }
            3 => {
                // a//b//c
                let mut w = Twig::new(t("a"));
                let b = w.add(0, Descendant, t("b"));
                w.add(b, Descendant, t("c"));
                w
            }
            4 => {
                // b[//a/c][//d] — branch with a mixed-axis path
                let mut w = Twig::new(t("b"));
                let a = w.add(0, Descendant, t("a"));
                w.add(a, Child, t("c"));
                w.add(0, Descendant, t("d"));
                w
            }
            _ => {
                // a[//a] — recursive same-tag twig
                let mut w = Twig::new(t("a"));
                w.add(0, Descendant, t("a"));
                w
            }
        };
        assert_eq!(twig_join(&db, &twig), twig_join_naive(&db, &twig), "shape {shape}");
    }
}

// ---------------------------------------------------------------------
// Random query generation over the XMark schema
// ---------------------------------------------------------------------

/// A tiny random query family: pick a path, an optional predicate, and a
/// return shape; every engine must agree on the result.
fn arb_query(rng: &mut Rng) -> String {
    let paths = [
        ("person", "name"),
        ("person", "emailaddress"),
        ("open_auction", "initial"),
        ("open_auction", "quantity"),
        ("closed_auction", "price"),
        ("item", "location"),
    ];
    let (elem, field) = paths[rng.below(paths.len())];
    let where_clause = if rng.below(2) == 0 {
        let op = [">", "<", "="][rng.below(3)];
        let v = rng.below(300);
        format!("WHERE $x/{field} {op} {v}")
    } else {
        String::new()
    };
    let ret = if rng.below(2) == 0 {
        format!("RETURN <n>{{count($x/{field})}}</n>")
    } else {
        format!("RETURN $x/{field}")
    };
    format!("FOR $x IN document(\"auction.xml\")//{elem} {where_clause} {ret}")
}

/// Engine agreement on random queries over XMark data.
#[test]
fn engines_agree_on_random_queries() {
    use baselines::Engine;
    use tlc_xml::baselines;
    let db = xmark::auction_database(0.001);
    let mut rng = Rng(0xD0C_000A);
    for _ in 0..24 {
        let q = arb_query(&mut rng);
        let reference = baselines::run(Engine::Tlc, &q, &db).unwrap();
        for engine in [Engine::TlcOpt, Engine::Gtp, Engine::Tax, Engine::Nav] {
            let out = baselines::run(engine, &q, &db).unwrap();
            assert_eq!(out, reference, "{} disagrees on {}", engine.name(), q);
        }
    }
}
