//! The LC dataflow analyzer over the whole query corpus.
//!
//! Every paper/extended query, compiled in every plan style and under every
//! plan engine, must verify — freshly translated, after each individual
//! rewrite pass, and after the full `optimize`/`optimize_costed` pipelines.
//! This is the integration face of the differential rewrite oracle: a
//! rewrite bug that drops, shadows or re-labels a class some later operator
//! still references fails here with a typed error naming the pass.

use baselines::Engine;
use tlc::translate::Style;

fn xmark_db() -> xmldb::Database {
    xmark::auction_database(0.001)
}

fn corpus() -> Vec<(&'static str, &'static str)> {
    queries::all_queries()
        .iter()
        .chain(queries::extended_queries())
        .map(|q| (q.name, q.text))
        .collect()
}

#[test]
fn every_compiled_plan_verifies_in_every_style() {
    let db = xmark_db();
    let mut checked = 0;
    for (name, text) in corpus() {
        for style in [Style::Tlc, Style::Gtp, Style::Tax] {
            let plan = match tlc::compile_with_style(text, &db, style) {
                Ok(p) => p,
                Err(tlc::Error::Unsupported(_)) => continue,
                Err(e) => panic!("{name} ({style:?}) failed to compile: {e}"),
            };
            tlc::analyze::verify(&plan)
                .unwrap_or_else(|e| panic!("{name} ({style:?}) fails analysis: {e}"));
            checked += 1;
        }
    }
    assert!(checked > 60, "corpus unexpectedly small: {checked} plans checked");
}

#[test]
fn every_rewrite_step_preserves_dataflow() {
    let db = xmark_db();
    for (name, text) in corpus() {
        let plan =
            tlc::compile(text, &db).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        // Step the two passes by hand, verifying after each application —
        // the same discipline optimize_verified enforces internally.
        let mut p = plan.clone();
        for (pass, rewrite) in [
            ("flatten_rewrite", tlc::rewrite::flatten_rewrite as fn(&_) -> _),
            ("shadow_rewrite", tlc::rewrite::shadow_rewrite),
        ] {
            loop {
                let (next, changed) = rewrite(&p);
                if !changed {
                    break;
                }
                tlc::analyze::verify(&next).unwrap_or_else(|e| {
                    panic!("{name}: {pass} broke dataflow: {e}\n{}", next.display(Some(&db)))
                });
                p = next;
            }
        }
        // And the packaged pipelines.
        tlc::optimize_verified(&plan).unwrap_or_else(|(_, v)| panic!("{name}: {v}"));
        let costed = tlc::optimize_costed(&plan, &db);
        tlc::analyze::verify(&costed)
            .unwrap_or_else(|e| panic!("{name}: costed plan fails analysis: {e}"));
    }
}

#[test]
fn every_engine_plan_verifies() {
    let db = xmark_db();
    for (name, text) in corpus() {
        for engine in Engine::plan_engines() {
            let plan = match baselines::plan_for(engine, text, &db) {
                Ok(p) => p,
                Err(tlc::Error::Unsupported(_)) => continue,
                Err(e) => panic!("{name} ({}) failed to plan: {e}", engine.name()),
            };
            tlc::analyze::verify(&plan)
                .unwrap_or_else(|e| panic!("{name} ({}) fails analysis: {e}", engine.name()));
        }
    }
}
