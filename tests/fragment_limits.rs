//! The supported-fragment boundary: queries inside the Figure 5 fragment
//! compile; queries outside it fail with a diagnosable error rather than
//! silently computing something else.

use tlc_xml::{tlc, xmldb};

fn db() -> xmldb::Database {
    let mut db = xmldb::Database::new();
    db.load_xml(
        "auction.xml",
        r#"<site><people>
             <person id="p0"><name>Ann</name><age>30</age>
               <watches><watch open_auction="a1"/><watch open_auction="a2"/></watches></person>
             <person id="p1"><name>Bo</name><age>45</age></person>
           </people></site>"#,
    )
    .unwrap();
    db
}

#[test]
fn all_aggregate_functions_work() {
    let db = db();
    for (f, expected) in
        [("count", "2"), ("min", "30"), ("max", "45"), ("sum", "75"), ("avg", "37.5")]
    {
        let q = format!(r#"FOR $s IN document("auction.xml")/site RETURN <v>{{{f}($s//age)}}</v>"#);
        let plan = tlc::compile(&q, &db).unwrap_or_else(|e| panic!("{f}: {e}"));
        let out = tlc::execute_to_string(&db, &plan).unwrap();
        assert_eq!(out, format!("<v>{expected}</v>"), "{f}");
    }
}

#[test]
fn some_quantifier_end_to_end() {
    let db = db();
    let q = r#"FOR $p IN document("auction.xml")//person
               WHERE SOME $a IN $p/age SATISFIES $a > 40
               RETURN $p/name"#;
    let plan = tlc::compile(q, &db).unwrap();
    assert_eq!(tlc::execute_to_string(&db, &plan).unwrap(), "<name>Bo</name>");
}

#[test]
fn for_over_variable_path_fans_out() {
    let db = db();
    let q = r#"FOR $p IN document("auction.xml")//person
               FOR $w IN $p/watches/watch
               RETURN <w person={$p/name/text()}>{$w/@open_auction/text()}</w>"#;
    let plan = tlc::compile(q, &db).unwrap();
    let out = tlc::execute_to_string(&db, &plan).unwrap();
    assert_eq!(out, "<w person=\"Ann\">a1</w>\n<w person=\"Ann\">a2</w>");
}

#[test]
fn return_position_subquery_desugars_to_let() {
    // The Figure 5 grammar allows a FLWOR directly in RETURN position; the
    // translator desugars it into a synthetic LET.
    let db = db();
    let q = r#"FOR $p IN document("auction.xml")//person
               WHERE $p/age > 25
               RETURN <out name={$p/name/text()}>{
                 FOR $q IN document("auction.xml")//person
                 WHERE $q/@id = $p/@id
                 RETURN <self>{$q/age/text()}</self>
               }</out>"#;
    let plan = tlc::compile(q, &db).unwrap();
    let out = tlc::execute_to_string(&db, &plan).unwrap();
    assert_eq!(
        out,
        "<out name=\"Ann\"><self>30</self></out>\n<out name=\"Bo\"><self>45</self></out>"
    );
    // NAV agrees.
    let nav = baselines::run(baselines::Engine::Nav, q, &db).unwrap();
    assert_eq!(nav, out);
}

#[test]
fn variable_shadowing_in_subqueries() {
    // The inner FLWOR rebinds $p; the outer $p must survive for the final
    // RETURN (a regression test for the navigational interpreter's scope
    // restoration, and a check that the translator resolves innermost-first).
    let db = db();
    let q = r#"FOR $p IN document("auction.xml")//person
               LET $a := FOR $p IN document("auction.xml")//person
                         WHERE $p/age > 40
                         RETURN <elder>{$p/name/text()}</elder>
               WHERE $p/@id = "p0"
               RETURN <out name={$p/name/text()}>{$a/elder}</out>"#;
    let tlc_out = {
        let plan = tlc::compile(q, &db).unwrap();
        tlc::execute_to_string(&db, &plan).unwrap()
    };
    assert_eq!(tlc_out, "<out name=\"Ann\"><elder>Bo</elder></out>");
    let nav_out = baselines::run(baselines::Engine::Nav, q, &db).unwrap();
    assert_eq!(nav_out, tlc_out);
}

#[test]
fn unsupported_features_error_cleanly() {
    let db = db();
    let cases = [
        // FOR over a nested FLWOR.
        r#"FOR $p IN (FOR $q IN document("auction.xml")//person RETURN $q) RETURN $p"#,
        // Multi-step path into a subquery variable.
        r#"FOR $p IN document("auction.xml")//person
           LET $a := FOR $q IN document("auction.xml")//person
                     WHERE $q/@id = $p/@id RETURN <r><s>{$q/name/text()}</s></r>
           RETURN $a/r/s"#,
        // Subquery whose RETURN is not a constructor.
        r#"FOR $p IN document("auction.xml")//person
           LET $a := FOR $q IN document("auction.xml")//person
                     WHERE $q/@id = $p/@id RETURN $q/name
           RETURN <out>{$a}</out>"#,
    ];
    for q in cases {
        match tlc::compile(q, &db) {
            Err(tlc::Error::Unsupported(_)) => {}
            other => panic!("expected Unsupported for {q}, got {other:?}"),
        }
    }
}

#[test]
fn parse_errors_surface_position() {
    let db = db();
    let err = tlc::compile("FOR $p IN RETURN $p", &db).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parse"), "{msg}");
}

#[test]
fn unknown_document_reports_name() {
    let db = db();
    let plan = tlc::compile(r#"FOR $p IN document("missing.xml")//person RETURN $p"#, &db).unwrap();
    match tlc::execute(&db, &plan) {
        Err(tlc::Error::UnknownDocument(name)) => assert_eq!(name, "missing.xml"),
        other => panic!("expected UnknownDocument, got {other:?}"),
    }
}

#[test]
fn nonexistent_tags_yield_empty_results_not_errors() {
    let db = db();
    let plan = tlc::compile(r#"FOR $z IN document("auction.xml")//zebra RETURN $z"#, &db).unwrap();
    assert_eq!(tlc::execute_to_string(&db, &plan).unwrap(), "");
}
