//! Worked examples from the paper's figures, reproduced end-to-end
//! (experiment E4 of DESIGN.md).

use tlc::{LclId, MSpec, Plan};
use tlc_xml::{tlc, xmark, xmldb};
use xmldb::AxisRel;

/// Figure 4: one APT with `-`/`?`/`+` edges over the two sample input trees
/// produces exactly the three witness trees of Figure 4(c), with E and A
/// clustered and D fanned out.
#[test]
fn figure_4_witness_trees() {
    let mut db = xmldb::Database::new();
    db.load_xml(
        "fig4.xml",
        "<root>\
           <B><A><E/><E/></A><A/><C/><D/><D/></B>\
           <B><A><E/></A><C/></B>\
         </root>",
    )
    .unwrap();
    let tag = |n: &str| db.interner().lookup(n).unwrap();
    let mut apt = tlc::Apt::for_document("fig4.xml", LclId(1));
    let b = apt.add(None, AxisRel::Descendant, MSpec::One, tag("B"), None, LclId(2));
    let a = apt.add(Some(b), AxisRel::Child, MSpec::Plus, tag("A"), None, LclId(3));
    apt.add(Some(a), AxisRel::Descendant, MSpec::Plus, tag("E"), None, LclId(4));
    apt.add(Some(b), AxisRel::Child, MSpec::One, tag("C"), None, LclId(5));
    apt.add(Some(b), AxisRel::Child, MSpec::Opt, tag("D"), None, LclId(6));

    let (trees, _) = tlc::execute(&db, &Plan::Select { input: None, apt }).unwrap();
    assert_eq!(trees.len(), 3, "Figure 4(c) shows three witness trees");

    // First input tree: D1 and D2 fan out into two witness trees (the `?`
    // edge), each carrying the same clustered A/E structure.
    let d_bearing: Vec<_> = trees.iter().filter(|t| !t.members(LclId(6)).is_empty()).collect();
    assert_eq!(d_bearing.len(), 2);
    for t in &d_bearing {
        assert_eq!(t.members(LclId(6)).len(), 1, "one D per witness tree");
        assert_eq!(t.members(LclId(4)).len(), 2, "E1, E2 clustered by '+'");
    }
    // Second input tree: no D at all, let through by `?`.
    let d_less: Vec<_> = trees.iter().filter(|t| t.members(LclId(6)).is_empty()).collect();
    assert_eq!(d_less.len(), 1);
    assert_eq!(d_less[0].members(LclId(4)).len(), 1, "E3 only");
}

/// Figure 7: the translated Q1 plan has the paper's operator inventory —
/// two base selections, a value join, the count aggregate + filter, project,
/// node-id duplicate elimination, two return selections and a construct.
#[test]
fn figure_7_q1_plan_inventory() {
    let db = xmark::auction_database(0.002);
    let q1 = queries::query("Q1").unwrap();
    let plan = tlc::compile(q1.text, &db).unwrap();
    let rendered = plan.display(Some(&db)).to_string();

    assert_eq!(plan.select_count(), 4, "2 base + 2 return-extension selects:\n{rendered}");
    assert_eq!(rendered.matches("Join[root").count(), 1, "{rendered}");
    assert!(rendered.contains("Aggregate[count"), "{rendered}");
    assert!(rendered.contains("DupElim[NodeId"), "{rendered}");
    assert!(rendered.contains("Construct"), "{rendered}");
    // The bidder tag appears twice in the Select 2 pattern — the redundancy
    // §4 eliminates (one `*` branch for the count, one `-` branch for the
    // join path).
    let select2 = rendered.lines().find(|l| l.contains("open_auction")).unwrap();
    assert_eq!(select2.matches("bidder").count(), 2, "{select2}");
}

/// Figure 8: Q2's nested plan — the inner block is joined in with a `*`
/// (left-outer-nest) edge, the deferred predicate (7)=(9) sits on that
/// join, and the EVERY quantifier becomes a Filter in Every mode.
#[test]
fn figure_8_q2_plan_structure() {
    let db = xmark::auction_database(0.002);
    let q2 = queries::query("Q2").unwrap();
    let plan = tlc::compile(q2.text, &db).unwrap();
    let rendered = plan.display(Some(&db)).to_string();
    assert!(rendered.contains("right=*"), "LET joins with a left-outer-nest edge:\n{rendered}");
    assert!(rendered.contains("mode=Every"), "{rendered}");
    assert_eq!(rendered.matches("Construct").count(), 2, "inner + outer construct:\n{rendered}");
    assert_eq!(rendered.matches("DupElim").count(), 2, "inner + outer NodeIDDE:\n{rendered}");
}

/// Figure 9: the Flatten operator's worked example — a tree with nested
/// E/A clusters under B flattens in two steps to four single-pair trees.
#[test]
fn figure_9_flatten_example() {
    use tlc::ops::flatten;
    use tlc::tree::{RSource, ResultTree};
    use xmldb::{DocId, NodeId};

    let base = |pre| RSource::Base(NodeId::new(DocId(0), pre));
    // B1 with children E1, E2, A1, A2; E in class 2, A in class 3.
    let mut t = ResultTree::with_root(base(0));
    t.assign_lcl(t.root(), LclId(1));
    for (pre, lcl) in [(1, 2), (2, 2), (3, 3), (4, 3)] {
        let root = t.root();
        let n = t.add_node(root, base(pre));
        t.assign_lcl(n, LclId(lcl));
    }
    let mut stats = tlc::ExecStats::new();
    // FL[B, E]: two trees, each with one E and both As.
    let step1 = flatten(vec![t], LclId(1), LclId(2), &mut stats).unwrap();
    assert_eq!(step1.len(), 2);
    for t in &step1 {
        assert_eq!(t.members(LclId(2)).len(), 1);
        assert_eq!(t.members(LclId(3)).len(), 2);
    }
    // FL[B, A]: four trees, each a single (E, A) pair.
    let step2 = flatten(step1, LclId(1), LclId(3), &mut stats).unwrap();
    assert_eq!(step2.len(), 4);
    for t in &step2 {
        assert_eq!(t.members(LclId(2)).len(), 1);
        assert_eq!(t.members(LclId(3)).len(), 1);
    }
}

/// Figure 15's qualitative claims at a reduced factor: TLC beats GTP and
/// TAX on the heterogeneity-instigator queries, and NAV loses heavily on
/// joins (see EXPERIMENTS.md for the full shape discussion).
#[test]
fn figure_15_shape_spot_check() {
    use baselines::Engine;
    let db = xmark::auction_database(0.01);
    let timed = |engine: Engine, name: &str| {
        let q = queries::query(name).unwrap();
        // Warm-up, then best-of-3 to keep the test robust.
        let _ = baselines::run(engine, q.text, &db).unwrap();
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                let _ = baselines::run(engine, q.text, &db).unwrap();
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    for name in ["Q1", "Q2", "x10"] {
        let tlc_t = timed(Engine::Tlc, name);
        let tax_t = timed(Engine::Tax, name);
        let nav_t = timed(Engine::Nav, name);
        assert!(tlc_t < tax_t, "{name}: TLC {tlc_t:?} should beat TAX {tax_t:?}");
        assert!(tlc_t < nav_t, "{name}: TLC {tlc_t:?} should beat NAV {nav_t:?}");
    }
}
