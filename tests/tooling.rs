//! Tooling-level integration: query pretty-printing, database snapshots,
//! traced execution — the pieces a downstream user leans on daily.

use baselines::Engine;
use tlc_xml::{baselines, queries, tlc, xmark, xmldb, xquery};

/// Every workload query survives a parse → pretty-print → parse round trip.
#[test]
fn workload_queries_round_trip_through_the_pretty_printer() {
    for q in queries::all_queries().iter().chain(queries::extended_queries()) {
        let ast = xquery::parse(q.text).unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let printed = xquery::PrettyQuery(&ast).to_string();
        let reparsed = xquery::parse(&printed)
            .unwrap_or_else(|e| panic!("{} reprint fails to parse: {e}\n{printed}", q.name));
        assert_eq!(ast, reparsed, "{} is not print-stable:\n{printed}", q.name);
    }
}

/// Pretty-printed queries are not just parseable — they still produce the
/// same answers.
#[test]
fn pretty_printed_queries_produce_identical_answers() {
    let db = xmark::auction_database(0.002);
    for name in ["x1", "x5", "x19", "Q1", "Q2"] {
        let q = queries::query(name).unwrap();
        let ast = xquery::parse(q.text).unwrap();
        let printed = xquery::PrettyQuery(&ast).to_string();
        let original = baselines::run(Engine::Tlc, q.text, &db).unwrap();
        let reprinted = baselines::run(Engine::Tlc, &printed, &db).unwrap();
        assert_eq!(original, reprinted, "{name}");
    }
}

/// A snapshot of XMark data answers queries identically to the original.
#[test]
fn snapshots_answer_queries_identically() {
    let db = xmark::auction_database(0.002);
    let path = std::env::temp_dir().join(format!("tlcx_it_{}.tlcx", std::process::id()));
    xmldb::save_file(&db, &path).unwrap();
    let restored = xmldb::load_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(db.node_count(), restored.node_count());
    for name in ["x1", "x6", "x14", "Q1"] {
        let q = queries::query(name).unwrap();
        assert_eq!(
            baselines::run(Engine::Tlc, q.text, &db).unwrap(),
            baselines::run(Engine::Tlc, q.text, &restored).unwrap(),
            "{name} over the snapshot"
        );
    }
}

/// Traced execution agrees with plain execution on the whole workload and
/// accounts for every operator.
#[test]
fn traced_execution_covers_the_workload() {
    let db = xmark::auction_database(0.002);
    for q in queries::all_queries() {
        let plan = baselines::plan_for(Engine::Tlc, q.text, &db).unwrap();
        let (plain, _) = tlc::execute(&db, &plan).unwrap();
        let (traced, _, traces) = tlc::execute_traced(&db, &plan).unwrap();
        assert_eq!(
            tlc::serialize_results(&db, &plain),
            tlc::serialize_results(&db, &traced),
            "{}",
            q.name
        );
        assert_eq!(traces.len(), plan.operator_count(), "{}", q.name);
        assert_eq!(traces[0].out_trees, traced.len(), "{}: root trace reports the output", q.name);
    }
}

/// The cost model ranks the workload plans without panicking and with sane
/// (finite, non-negative) numbers.
#[test]
fn cost_model_is_total_over_the_workload() {
    let db = xmark::auction_database(0.002);
    let model = tlc::CostModel::new(&db);
    for q in queries::all_queries().iter().chain(queries::extended_queries()) {
        let plan = baselines::plan_for(Engine::Tlc, q.text, &db).unwrap();
        let cost = model.plan_cost(&plan);
        assert!(cost.is_finite() && cost >= 0.0, "{}: cost {cost}", q.name);
        let card = model.plan_cardinality(&plan);
        assert!(card.is_finite() && card >= 0.0, "{}: cardinality {card}", q.name);
    }
}

/// The XMark schema validator accepts what the generator produces, at the
/// factor the cross-engine tests use.
#[test]
fn generated_data_is_schema_valid() {
    let db = xmark::auction_database(0.002);
    let violations = xmark::validate(&db, xmldb::DocId(0));
    assert!(violations.is_empty(), "first: {:?}", violations.first());
}
