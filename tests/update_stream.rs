//! Seeded property test for the in-place update engine: random
//! insert/delete/settext streams, checked step by step.
//!
//! After **every** mutation the test asserts two things:
//!
//! 1. the mutated store passes the full invariant check (`xmldb::check` —
//!    interval encoding, arena layout, index completeness), and
//! 2. a set of probe queries answers **byte-identically** on the mutated
//!    store and on a from-scratch reference built by serializing the
//!    mutated document back to XML and reparsing it — so incremental index
//!    maintenance can never drift from what a rebuild would produce.
//!
//! Streams are drawn from a seeded splitmix generator (no external
//! property-testing crate), so failures replay exactly. The generator
//! deliberately targets *existing* nodes of the evolving document —
//! including previously inserted ones — so deletes and settexts compound
//! over the run and the gap-exhaustion renumbering fallback is reached.

use tlc_xml::{baselines, service, xmldb};

use baselines::Engine;
use service::{Service, ServiceConfig, UpdateOp};
use std::sync::Arc;
use xmldb::{Database, NodeKind};

/// Splitmix64, same construction as `tests/properties.rs`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const DOC: &str = "auction.xml";

/// Probe queries over the mutation tag alphabet. Chosen to cross the
/// mutated region in different ways: full-subtree serialization, child
/// steps, descendant steps, and a predicate on text content.
fn probes() -> [&'static str; 4] {
    [
        r#"FOR $a IN document("auction.xml")//a RETURN $a"#,
        r#"FOR $b IN document("auction.xml")//a/b RETURN $b"#,
        r#"FOR $c IN document("auction.xml")//c RETURN $c"#,
        r#"FOR $b IN document("auction.xml")//b WHERE $b = "hit" RETURN $b"#,
    ]
}

/// Serializes `db`'s document back to XML and reparses it from scratch.
fn reparse(db: &Database) -> Database {
    let doc = db.document_by_name(DOC).expect("document exists");
    let xml = xmldb::serialize::serialize_subtree(db, db.root(doc));
    let mut fresh = Database::new();
    fresh.load_xml(DOC, &xml).expect("reparse");
    fresh
}

/// Pre ordinals of every element node, and of the leaf elements among
/// them (no non-attribute children — the ones `set_text` accepts).
fn element_pres(db: &Database) -> (Vec<u32>, Vec<u32>) {
    let doc = db.document_by_name(DOC).expect("document exists");
    let recs = db.document(doc).records();
    let mut all = Vec::new();
    let mut leaves = Vec::new();
    for r in recs {
        if r.kind != NodeKind::Element {
            continue;
        }
        all.push(r.pre);
        let has_child = recs.iter().any(|c| c.parent == r.pre && c.kind != NodeKind::Attribute);
        if !has_child {
            leaves.push(r.pre);
        }
    }
    (all, leaves)
}

/// Draws the next mutation against the current snapshot. Never empties the
/// document: the document element itself is not deleted.
fn next_op(rng: &mut Rng, db: &Database, step: usize) -> UpdateOp {
    let (elements, leaves) = element_pres(db);
    let target = elements[rng.below(elements.len())];
    match rng.below(10) {
        // Insert under a random element: nested or flat, sometimes with
        // attributes, sometimes with the text the predicate probe hunts.
        0..=4 => {
            let xml = match rng.below(4) {
                0 => format!("<a><b>hit</b><c>s{step}</c></a>"),
                1 => format!("<b id=\"n{step}\">text {step}</b>"),
                2 => "<c/>".to_string(),
                _ => format!("<a>top {step}<b>inner</b></a>"),
            };
            UpdateOp::Insert { doc: DOC.into(), parent: target, xml }
        }
        // Replace a random leaf element's text (empty text sometimes).
        5..=7 if !leaves.is_empty() => {
            let pre = leaves[rng.below(leaves.len())];
            let text = if rng.below(4) == 0 {
                String::new()
            } else {
                format!("v{} {step}", rng.below(100))
            };
            UpdateOp::SetText { doc: DOC.into(), pre, text }
        }
        // Delete a random non-root subtree; refill when the document is
        // too small to shrink further.
        _ => {
            if elements.len() >= 3 && target != elements[0] {
                UpdateOp::Delete { doc: DOC.into(), pre: target }
            } else {
                UpdateOp::Insert {
                    doc: DOC.into(),
                    parent: target,
                    xml: format!("<b>refill {step}</b>"),
                }
            }
        }
    }
}

/// One full stream: `steps` random mutations through the service's
/// copy-on-write commit path, invariants and probe answers checked after
/// every single step.
fn run_stream(seed: u64, steps: usize) -> usize {
    let mut db = Database::new();
    db.load_xml(DOC, "<a><b>hit</b><c>seed text</c><a><b>deep</b></a></a>").expect("seed document");
    let svc = Service::new(Arc::new(db), ServiceConfig::default());
    let mut rng = Rng(seed);
    let mut renumbered = 0usize;

    for step in 0..steps {
        // Warm the caches so the seeding path (not just the purge path) is
        // exercised on every commit.
        for q in probes() {
            svc.execute(q).expect("probe query");
        }
        let op = next_op(&mut rng, &svc.database(), step);
        let outcome = svc
            .apply_update(svc.default_database(), &op)
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: {op:?} failed: {e}"));
        renumbered += outcome.summary.renumbered;

        let snapshot = svc.database();
        xmldb::check_database(&snapshot).unwrap_or_else(|e| {
            panic!("seed {seed} step {step}: store check failed after {op:?}: {e}")
        });
        let reference = reparse(&snapshot);
        for q in probes() {
            let live = svc.execute(q).expect("probe query").output;
            let fresh = baselines::run(Engine::Tlc, q, &reference).expect("reference run");
            assert_eq!(
                live, fresh,
                "seed {seed} step {step}: answer drift after {op:?} on query {q}"
            );
        }
    }
    renumbered
}

#[test]
fn random_update_streams_preserve_invariants_and_answers() {
    let mut renumbered = 0;
    for seed in [1, 42, 4096] {
        renumbered += run_stream(seed, 40);
    }
    assert!(
        renumbered > 0,
        "no stream ever hit the renumbering fallback — generator too tame to trust"
    );
}

#[test]
fn pure_insert_stream_exhausts_gaps_and_renumbers() {
    // Repeatedly appending under one parent halves the remaining gap each
    // time, so this must reach the renumbering fallback quickly and keep
    // answers intact through it.
    let mut db = Database::new();
    db.load_xml(DOC, "<a><b>hit</b></a>").expect("seed document");
    let svc = Service::new(Arc::new(db), ServiceConfig::default());
    let parent = svc.database().nodes_with_tag("a")[0].pre;
    let mut renumbered = 0usize;
    for step in 0..48 {
        let op = UpdateOp::Insert { doc: DOC.into(), parent, xml: format!("<c>s{step}</c>") };
        let outcome = svc.apply_update(svc.default_database(), &op).expect("insert");
        renumbered += outcome.summary.renumbered;
        let snapshot = svc.database();
        xmldb::check_database(&snapshot).expect("store check");
        let reference = reparse(&snapshot);
        for q in probes() {
            let live = svc.execute(q).expect("probe").output;
            let fresh = baselines::run(Engine::Tlc, q, &reference).expect("reference");
            assert_eq!(live, fresh, "step {step}: drift after append #{step} on {q}");
        }
    }
    assert!(renumbered > 0, "48 appends under one parent must exhaust the gap");
}
