//! Cross-engine equivalence: every query of the Figure 15 workload must
//! produce byte-identical output on TLC, TLC+rewrites (OPT), GTP, TAX and
//! the navigational interpreter, over a real XMark document.
//!
//! This is the strongest correctness check in the repository: the five
//! evaluators share almost no code paths above the store (NAV shares none),
//! so agreement on 23 queries over thousands of nodes is hard to achieve by
//! accident. The register-IR backend rides the same harness: every plan is
//! also lowered to a [`tlc::vm`] program and replayed with `--ir` on and
//! off, byte-compared against the tree walk.

use baselines::Engine;
use queries::{all_queries, run_query};

fn xmark_db() -> xmldb::Database {
    // Factor 0.002 ≈ small but non-trivial: every query has work to do.
    xmark::auction_database(0.002)
}

#[test]
fn all_queries_agree_across_all_engines() {
    let db = xmark_db();
    let mut checked = 0;
    for q in all_queries() {
        let reference = run_query(&db, q.name, Engine::Tlc)
            .unwrap_or_else(|e| panic!("TLC failed on {}: {e}", q.name));
        for engine in [Engine::TlcOpt, Engine::TlcCosted, Engine::Gtp, Engine::Tax, Engine::Nav] {
            let out = run_query(&db, q.name, engine)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", engine.name(), q.name));
            assert_eq!(out, reference, "{} disagrees with TLC on {}", engine.name(), q.name);
        }
        checked += 1;
    }
    assert_eq!(checked, 23);
}

#[test]
fn extended_workload_agrees_across_all_engines() {
    let db = xmark_db();
    for q in queries::extended_queries() {
        let reference = baselines::run(Engine::Tlc, q.text, &db)
            .unwrap_or_else(|e| panic!("TLC failed on {}: {e}", q.name));
        for engine in [Engine::TlcOpt, Engine::TlcCosted, Engine::Gtp, Engine::Tax, Engine::Nav] {
            let out = baselines::run(engine, q.text, &db)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", engine.name(), q.name));
            assert_eq!(out, reference, "{} disagrees on {}", engine.name(), q.name);
        }
    }
}

/// The register-IR backend ([`tlc::vm`]) against the tree walker, directly
/// at the library layer: every workload query's plan — for both plan-based
/// engines whose plans the lowerer accepts — is lowered to a program and
/// executed on the bytecode evaluator, and the serialized output must be
/// byte-identical to walking the same plan.
#[test]
fn ir_backend_matches_the_tree_walker_on_the_full_workload() {
    let db = xmark_db();
    let mut programs = 0;
    for q in all_queries() {
        for engine in [Engine::Tlc, Engine::TlcOpt] {
            let plan = baselines::plan_for(engine, q.text, &db)
                .unwrap_or_else(|e| panic!("{} failed to plan {}: {e}", engine.name(), q.name));
            let walked = baselines::run(engine, q.text, &db)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", engine.name(), q.name));
            let prog = tlc::vm::lower(&plan).unwrap_or_else(|e| {
                panic!("{} plan of {} failed to lower: {e}", engine.name(), q.name)
            });
            let mut ctx = tlc::ExecCtx::new();
            let trees = tlc::vm::run(&db, &prog, &mut ctx)
                .unwrap_or_else(|e| panic!("IR run of {} ({}) failed: {e}", q.name, engine.name()));
            assert_eq!(
                tlc::serialize_results(&db, &trees),
                walked,
                "IR diverged from the tree walker on {} ({})",
                q.name,
                engine.name()
            );
            programs += 1;
        }
    }
    assert_eq!(programs, 2 * 23);
}

/// The same property end to end through the service: identical traffic
/// against a `--ir on` service and a `--ir off` service must produce
/// byte-identical answers on every workload query, and the IR side must
/// actually have compiled programs.
#[test]
fn service_ir_on_and_off_agree_on_the_full_workload() {
    let db = std::sync::Arc::new(xmark_db());
    for engine in [Engine::Tlc, Engine::TlcOpt] {
        let on = service::Service::new(
            std::sync::Arc::clone(&db),
            service::ServiceConfig { engine, ..Default::default() },
        );
        let off = service::Service::new(
            std::sync::Arc::clone(&db),
            service::ServiceConfig { engine, ir: false, ..Default::default() },
        );
        for q in all_queries() {
            let a = on
                .execute(q.text)
                .unwrap_or_else(|e| panic!("ir-on service failed {}: {e}", q.name));
            let b = off
                .execute(q.text)
                .unwrap_or_else(|e| panic!("ir-off service failed {}: {e}", q.name));
            assert_eq!(
                a.output,
                b.output,
                "--ir on/off disagree on {} ({})",
                q.name,
                engine.name()
            );
        }
        assert!(on.metrics_snapshot().ir_compiles > 0, "ir-on service never lowered a plan");
        assert_eq!(off.metrics_snapshot().ir_compiles, 0, "ir-off service lowered a plan");
    }
}

#[test]
fn queries_produce_shapely_output() {
    let db = xmark_db();
    // Spot-check that queries are not vacuously empty / trivially identical.
    let x1 = run_query(&db, "x1", Engine::Tlc).unwrap();
    assert_eq!(x1.matches("<name>").count(), 1, "x1 is single-output: {x1}");

    let x2 = run_query(&db, "x2", Engine::Tlc).unwrap();
    assert!(x2.matches("<increase>").count() > 10, "x2 has lots of output trees");

    let x6 = run_query(&db, "x6", Engine::Tlc).unwrap();
    let n: u32 = x6.trim().parse().expect("x6 returns one number");
    assert!(n >= 12, "x6 counts all items, got {n}");

    let x20 = run_query(&db, "x20", Engine::Tlc).unwrap();
    assert!(x20.contains("<people>") && x20.contains("<items>"), "{x20}");

    let q1 = run_query(&db, "Q1", Engine::Tlc).unwrap();
    assert!(q1.contains("<person name="), "Q1 should have matches at this factor: {q1}");

    let x19 = run_query(&db, "x19", Engine::Tlc).unwrap();
    let locs: Vec<&str> = x19.matches("<location>").map(|_| "").collect();
    assert!(locs.len() >= 12, "x19 returns every item");
}

#[test]
fn x19_is_sorted_by_location() {
    let db = xmark_db();
    let out = run_query(&db, "x19", Engine::Tlc).unwrap();
    let mut locations = Vec::new();
    for part in out.split("<location>").skip(1) {
        locations.push(part.split("</location>").next().unwrap().to_string());
    }
    let mut sorted = locations.clone();
    sorted.sort();
    assert_eq!(locations, sorted, "ORDER BY $i/location must hold");
}

#[test]
fn rewrites_preserve_results_on_the_figure_16_set() {
    let db = xmark_db();
    for name in queries::FIG16_QUERIES {
        let plain = run_query(&db, name, Engine::Tlc).unwrap();
        let opt = run_query(&db, name, Engine::TlcOpt).unwrap();
        assert_eq!(plain, opt, "rewrite changed the answer of {name}");
    }
}
