#!/usr/bin/env bash
# Tier-1 verification: everything CI gates on. Runs fully offline — the
# workspace has zero external dependencies by design (see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
