#!/usr/bin/env bash
# Tier-1 verification: everything CI gates on. Runs fully offline — the
# workspace has zero external dependencies by design (see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Catalog smoke test: drive tlc-serve over stdin — open a second document,
# query both databases, edit the second's source, hot-swap it with .reload,
# and check each answer in the framed output.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
second="$smoke_dir/second.xml"
printf '<site><person><name>Ann</name></person></site>' > "$second"
out="$smoke_dir/out.txt"
{
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name/text()\n'
    printf '.open second %s\n' "$second"
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name\n'
    # Let the server drain the queries above before the source changes
    # under it; the pipe gives us no other ordering guarantee.
    sleep 1
    printf '<site><person><name>Bea</name></person></site>' > "$second"
    printf '.reload second\n'
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name\n'
    printf '.catalog\n'
    printf '.use main\n'
    printf '.drop second\n'
    printf '.catalog\n'
    printf '.quit\n'
} | ./target/release/tlc-serve --factor 0.001 > "$out" 2>/dev/null
grep -q '<name>Ann</name>' "$out"       # pre-swap answer from `second`
grep -q 'reloaded second: epoch 1' "$out"
grep -q '<name>Bea</name>' "$out"       # post-swap answer sees the edit
grep -q 'catalog: 2 database(s)' "$out"
grep -q 'dropped second' "$out"         # .drop purges the plan + match caches
grep -q 'catalog: 1 database(s)' "$out"
echo "tier1: catalog smoke test passed"

# Batched-execution smoke: the skewed-mix replay must byte-match the
# single-threaded reference on every answer and actually hit the match
# cache (the binary exits non-zero on either defect); assert the nonzero
# hit rate in the output too so a silent format change cannot mask it.
# The same run replays identical traffic with the register-IR backend on
# and off — the report must show a non-regressing IR QPS ratio — and with
# the execution arena disabled, gating the counting allocator's measured
# allocations-per-request (the binary exits non-zero when arenas fail to
# reduce them; check_qps.sh gates the figures against the baseline too).
batch_out="$smoke_dir/batch.txt"
./target/release/experiments batch --factor 0.0005 --clients 4 --requests 40 \
    --json "$smoke_dir/batch.json" > "$batch_out" 2>/dev/null
grep -q 'byte mismatches vs single-threaded reference: 0' "$batch_out"
grep -Eq 'match cache hit rate: ([1-9][0-9]*\.[0-9]|0\.[1-9])%' "$batch_out"
grep -q 'ir non-regression: ok' "$batch_out"
grep -q '"ir_speedup":' "$smoke_dir/batch.json"
grep -q 'heap allocs/request' "$batch_out"
grep -q 'arena pool:' "$batch_out"
grep -q '"batched_allocs_per_request":' "$smoke_dir/batch.json"
grep -q '"arena_reuse_rate":' "$smoke_dir/batch.json"
echo "tier1: batched execution smoke test passed"

# In-place update smoke: mutate a tiny catalog database through the line
# protocol (the document is 5 GAP-spaced nodes, so pre ordinals are
# knowable: site=32, person=64, name=96), confirm every answer reflects
# the mutation, and confirm the copy-on-write commit carried warmed
# plan/match cache entries into the new epoch. The manifest written by
# the first server must restore the catalog — name and epoch — on the
# next start.
tiny="$smoke_dir/tiny.xml"
printf '<site><person><name>Ann</name></person></site>' > "$tiny"
rw_out="$smoke_dir/rw.txt"
{
    printf '.open tiny %s\n' "$tiny"
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name\n'
    printf 'FOR $n IN document("auction.xml")//note RETURN $n\n'
    printf '.insert auction.xml 32 <note>smoke</note>\n'
    printf 'FOR $n IN document("auction.xml")//note RETURN $n\n'
    printf '.settext auction.xml 96 Bea\n'
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name\n'
    printf '.metrics\n'
    printf '.quit\n'
} | ./target/release/tlc-serve --factor 0.001 --manifest "$smoke_dir/catalog.manifest" \
    > "$rw_out" 2>/dev/null
grep -q 'updated tiny: epoch 1' "$rw_out"
grep -q '<note>smoke</note>' "$rw_out"   # the insert is queryable
grep -q 'updated tiny: epoch 2' "$rw_out"
grep -q '<name>Bea</name>' "$rw_out"     # the settext is queryable
# Selective invalidation: warmed entries whose footprints miss the
# mutated range must survive both epoch bumps.
grep -Eq 'db tiny: 2 update\(s\), [1-9][0-9]* plan\(s\) and [1-9][0-9]* match entr\(ies\) carried across epochs' "$rw_out"
restart_out="$smoke_dir/restart.txt"
printf '.catalog\n.quit\n' | ./target/release/tlc-serve --factor 0.001 \
    --manifest "$smoke_dir/catalog.manifest" > "$restart_out" 2>&1
grep -q 'restored 1 database(s) from manifest' "$restart_out"
grep -q 'tiny: epoch 2' "$restart_out"
echo "tier1: update + manifest smoke test passed"

# Mixed read/write experiment: every read byte-checked against a
# reparse-from-scratch reference, store invariants verified after every
# write. The binary exits non-zero on any mismatch, error, or check
# failure — and if no plan ever carried across a mutation epoch.
rwexp_out="$smoke_dir/rwexp.txt"
./target/release/experiments rw --factor 0.0005 --ops 60 > "$rwexp_out" 2>/dev/null
grep -q 'rw run clean' "$rwexp_out"
grep -q 'mismatches 0, errors 0, check failures 0' "$rwexp_out"
echo "tier1: read/write experiment smoke test passed"

# Static-analysis smoke: `.explain <query>` through the protocol must
# report the crafted lints (statically-empty select, redundant DupElim,
# dead Project column) plus the footprint and liveness sections.
explain_out="$smoke_dir/explain.txt"
{
    printf '.explain FOR $z IN document("auction.xml")//zzz RETURN $z\n'
    printf '.explain FOR $p IN document("auction.xml")//person LET $n := $p/name RETURN <r>{$p/age}</r>\n'
    printf '.quit\n'
} | ./target/release/tlc-serve --factor 0.001 > "$explain_out" 2>/dev/null
grep -q 'warning\[empty-select\]' "$explain_out"
grep -q 'warning\[redundant-dupelim\]' "$explain_out"
grep -q 'warning\[dead-project-column\]' "$explain_out"
grep -q '== footprint ==' "$explain_out"
grep -q '== liveness ==' "$explain_out"
grep -q '== ir ==' "$explain_out"
echo "tier1: explain/lint smoke test passed"

# Differential soundness oracle: seeded random plans, every static claim
# (cardinality, liveness-pruning byte-identity, empty-select lints,
# footprint-based cache carry, register-IR vs tree-walk byte equality)
# checked against execution. The binary exits non-zero on any violation.
lint_out="$smoke_dir/lintcheck.txt"
./target/release/experiments lintcheck --factor 0.0005 --plans 60 > "$lint_out" 2>/dev/null
grep -q 'lintcheck clean' "$lint_out"
grep -Eq 'register IR: [1-9][0-9]* program\(s\) lowered and replayed' "$lint_out"
echo "tier1: lintcheck oracle smoke test passed"

# Intra-query sharding smoke: the heavy queries run through the shard
# machinery at shard counts 1/2/4/8 on both backends, plus the same mix
# through a sharded service — every answer byte-checked against the
# single-threaded reference. The binary exits non-zero on any mismatch,
# failed request, or a shard path that never engaged.
par_out="$smoke_dir/parallel.txt"
./target/release/experiments parallel --factor 0.005 --clients 2 --requests 4 \
    --json "$smoke_dir/parallel.json" > "$par_out" 2>/dev/null
grep -q 'parallel run clean' "$par_out"
grep -q '0 mismatch(es)' "$par_out"
grep -q '"mismatches":0' "$smoke_dir/parallel.json"
echo "tier1: parallel sharding smoke test passed"

# Throughput non-regression against the checked-in baselines: re-run the
# batch, rw and parallel sweeps at baseline configuration and compare
# every QPS figure (scripts/check_qps.sh fails on a drop past tolerance).
./target/release/experiments batch --json "$smoke_dir/bench_batch.json" \
    > /dev/null 2>&1
./scripts/check_qps.sh scripts/baselines/BENCH_batch.json "$smoke_dir/bench_batch.json"
./target/release/experiments rw --json "$smoke_dir/bench_rw.json" \
    > /dev/null 2>&1
./scripts/check_qps.sh scripts/baselines/BENCH_rw.json "$smoke_dir/bench_rw.json"
./target/release/experiments parallel --json "$smoke_dir/bench_parallel.json" \
    > /dev/null 2>&1
./scripts/check_qps.sh scripts/baselines/BENCH_parallel.json "$smoke_dir/bench_parallel.json"
echo "tier1: QPS baseline check passed"
