#!/usr/bin/env bash
# Tier-1 verification: everything CI gates on. Runs fully offline — the
# workspace has zero external dependencies by design (see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Catalog smoke test: drive tlc-serve over stdin — open a second document,
# query both databases, edit the second's source, hot-swap it with .reload,
# and check each answer in the framed output.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
second="$smoke_dir/second.xml"
printf '<site><person><name>Ann</name></person></site>' > "$second"
out="$smoke_dir/out.txt"
{
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name/text()\n'
    printf '.open second %s\n' "$second"
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name\n'
    # Let the server drain the queries above before the source changes
    # under it; the pipe gives us no other ordering guarantee.
    sleep 1
    printf '<site><person><name>Bea</name></person></site>' > "$second"
    printf '.reload second\n'
    printf 'FOR $p IN document("auction.xml")//person RETURN $p/name\n'
    printf '.catalog\n'
    printf '.use main\n'
    printf '.drop second\n'
    printf '.catalog\n'
    printf '.quit\n'
} | ./target/release/tlc-serve --factor 0.001 > "$out" 2>/dev/null
grep -q '<name>Ann</name>' "$out"       # pre-swap answer from `second`
grep -q 'reloaded second: epoch 1' "$out"
grep -q '<name>Bea</name>' "$out"       # post-swap answer sees the edit
grep -q 'catalog: 2 database(s)' "$out"
grep -q 'dropped second' "$out"         # .drop purges the plan + match caches
grep -q 'catalog: 1 database(s)' "$out"
echo "tier1: catalog smoke test passed"

# Batched-execution smoke: the skewed-mix replay must byte-match the
# single-threaded reference on every answer and actually hit the match
# cache (the binary exits non-zero on either defect); assert the nonzero
# hit rate in the output too so a silent format change cannot mask it.
batch_out="$smoke_dir/batch.txt"
./target/release/experiments batch --factor 0.0005 --clients 4 --requests 40 \
    > "$batch_out" 2>/dev/null
grep -q 'byte mismatches vs single-threaded reference: 0' "$batch_out"
grep -Eq 'match cache hit rate: ([1-9][0-9]*\.[0-9]|0\.[1-9])%' "$batch_out"
echo "tier1: batched execution smoke test passed"
