#!/usr/bin/env bash
# Compares the throughput figures of a fresh `experiments ... --json`
# report against a checked-in baseline (scripts/baselines/), failing when
# any QPS figure drops below TOLERANCE x its baseline value. Reports that
# carry allocation counts (`*allocs_per_request`, from the counting
# allocator in `experiments batch`) are additionally gated the other way:
# a fresh count may not exceed its baseline by more than 1/TOLERANCE —
# an allocation regression means the execution arena stopped absorbing
# buffer traffic, which QPS alone can miss on fast hardware.
#
#   usage: check_qps.sh BASELINE.json FRESH.json [TOLERANCE]
#
# Figures are matched positionally: every `"qps"` / `"read_qps"` field, in
# document order (batch reports carry batched / per-request / tree-walk
# sides; rw reports carry one read_qps per write fraction), so baseline
# and fresh runs must use the same experiment configuration. The default
# tolerance of 0.5 guards against collapses — a regression that halves
# throughput (or doubles allocations) — not run-to-run jitter; hardware
# differences are expected to stay well inside it. Allocation counts are
# hardware-independent, so they sit far inside the tolerance by design.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 BASELINE.json FRESH.json [TOLERANCE]" >&2
    exit 2
fi
baseline="$1"
fresh="$2"
tolerance="${3:-0.5}"

extract() {
    grep -oE '"(read_)?qps":[0-9]+(\.[0-9]+)?' "$1" | cut -d: -f2
}

base_vals="$(extract "$baseline")"
fresh_vals="$(extract "$fresh")"

if [ -z "$base_vals" ] || [ -z "$fresh_vals" ]; then
    echo "check_qps: no qps figures found in $baseline or $fresh" >&2
    exit 2
fi
if [ "$(echo "$base_vals" | wc -l)" != "$(echo "$fresh_vals" | wc -l)" ]; then
    echo "check_qps: $baseline and $fresh carry different numbers of qps figures;" \
         "regenerate the baseline with the current report format" >&2
    exit 2
fi

paste <(echo "$base_vals") <(echo "$fresh_vals") | awk -v tol="$tolerance" '
    {
        floor = $1 * tol
        status = ($2 >= floor) ? "ok" : "REGRESSED"
        printf "check_qps: figure %d: baseline %.1f qps, fresh %.1f qps (floor %.1f): %s\n",
               NR, $1, $2, floor, status
        if ($2 < floor) bad++
    }
    END { exit (bad > 0) ? 1 : 0 }
'

# Allocation-count gate (upper bound). Only engages when both reports
# carry the figures, so reports without the counting allocator's output
# (rw, parallel) pass through untouched.
extract_allocs() {
    grep -oE '"[a-z_]*allocs_per_request":[0-9]+(\.[0-9]+)?' "$1" | cut -d: -f2 || true
}
base_allocs="$(extract_allocs "$baseline")"
fresh_allocs="$(extract_allocs "$fresh")"
if [ -n "$base_allocs" ] && [ -n "$fresh_allocs" ]; then
    if [ "$(echo "$base_allocs" | wc -l)" != "$(echo "$fresh_allocs" | wc -l)" ]; then
        echo "check_qps: $baseline and $fresh carry different numbers of allocation figures;" \
             "regenerate the baseline with the current report format" >&2
        exit 2
    fi
    paste <(echo "$base_allocs") <(echo "$fresh_allocs") | awk -v tol="$tolerance" '
        {
            ceiling = $1 / tol
            status = ($2 <= ceiling) ? "ok" : "REGRESSED"
            printf "check_qps: alloc figure %d: baseline %.0f allocs/request, fresh %.0f (ceiling %.0f): %s\n",
                   NR, $1, $2, ceiling, status
            if ($2 > ceiling) bad++
        }
        END { exit (bad > 0) ? 1 : 0 }
    '
elif [ -n "$base_allocs$fresh_allocs" ]; then
    echo "check_qps: only one of $baseline / $fresh carries allocation figures;" \
         "regenerate the baseline with the current report format" >&2
    exit 2
fi
echo "check_qps: all figures within tolerance $tolerance of $baseline"
